(* Ahead-of-time compilation of lowered verifiers.

   A scheme with a lowering splits its verifier into a total decode
   stage and a check stage over pre-decoded values (Scheme.lowering).
   The interpreted verifier re-decodes every certificate at every
   vertex that sees it — a vertex of degree d costs d + 1 decodes, and
   the allocations those decodes make are what serializes parallel
   sweeps on the shared minor heap.  [compile] instead decodes each
   distinct certificate exactly once up front (certificates are
   interned, so broadcast-heavy schemes decode a handful of strings),
   lays the per-vertex neighbor views out as flat arrays, and returns
   a per-vertex kernel that runs only the check stage: no decoding, no
   list building, and for the built-in schemes no allocation at all on
   the accept path. *)

module BH = Hashtbl.Make (struct
  type t = Bitstring.t

  let hash = Bitstring.hash
  let equal = Bitstring.equal
end)

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* Fallbacks are per-vertex and deterministic for a full sweep, but
   early-exit sweeps visit a scheduling-dependent subset of vertices,
   so the count is approximate. *)
let fallback_counter () = Metrics.counter ~approx:true "engine.compiled_fallbacks"

(* Compilation is pure in (scheme, instance, certificates), and the
   dominant caller pattern — the runtime's round loop, repeated
   sweeps over one assignment — re-presents the same inputs verbatim.
   A single slot remembers the last compile.  Validity is physical:
   same scheme, same instance, and every certificate the same value
   it was (bitstrings are immutable, so [==] per element certifies
   the array's contents; the snapshot copy guards against in-place
   element replacement in the caller's array).  Any difference falls
   through to a fresh compile, so the cache is invisible except in
   time.  The slot pins O(n) words for the last instance — bounded,
   and released by the next compile. *)
type entry = {
  c_scheme : Scheme.t;
  c_inst : Instance.t;
  c_certs : Bitstring.t array;
  c_kernel : int -> Scheme.verdict;
}

let slot : entry option Atomic.t = Atomic.make None

let slot_hit (scheme : Scheme.t) (inst : Instance.t) certs =
  match Atomic.get slot with
  | None -> None
  | Some e ->
      let n = Array.length certs in
      if
        e.c_scheme == scheme && e.c_inst == inst
        && Array.length e.c_certs = n
        &&
        let i = ref 0 in
        while !i < n && e.c_certs.(!i) == certs.(!i) do
          incr i
        done;
        !i = n
      then begin
        if Metrics.is_enabled () then
          Metrics.incr (Metrics.counter ~approx:true "vcompile.kernel_reuse");
        Some e.c_kernel
      end
      else None

let compile_fresh (scheme : Scheme.t) (inst : Instance.t) certs =
  match scheme.Scheme.compiled with
    | None -> None
    | Some (Scheme.Compiled l) ->
        Span.with_ ("vcompile." ^ scheme.Scheme.name) @@ fun () ->
        let id_bits = inst.Instance.id_bits in
        let ids = inst.Instance.ids in
        let labels = inst.Instance.labels in
        let g = inst.Instance.graph in
        let n = Graph.n g in
        (* Decode once per distinct certificate.  [decode] is total by
           contract; if a custom lowering still raises, a non-fatal
           exception poisons that certificate ([None]) and every vertex
           seeing it falls back to the interpreted verifier, keeping
           the engine's containment story; fatal exceptions propagate
           (Fatal.is_fatal). *)
        let cache = BH.create (max 16 (min n 65536)) in
        let dec_of c =
          match BH.find_opt cache c with
          | Some d -> d
          | None ->
              let d =
                match l.Scheme.decode ~id_bits c with
                | d -> Some d
                | exception e when not (Fatal.is_fatal e) -> None
              in
              BH.add cache c d;
              d
        in
        let dec = Array.map dec_of certs in
        let interpret v =
          if Metrics.is_enabled () then Metrics.incr (fallback_counter ());
          scheme.Scheme.verifier (Scheme.view_of inst certs v)
        in
        (* The compiled layout mirrors the graph's CSR: one whole-graph
           [nbr_ids]/[nbr_dec] pair shaped exactly like the adjacency
           [col] array, rows sorted ascending by *identifier* — the
           order [Scheme.view_of] presents.  The kernel hands each
           check its row as a slice of the two shared arrays, so a
           sweep is one linear pass over flat memory with no per-vertex
           view structure at all.  A vertex that sees any poisoned
           certificate keeps [ok = false] and takes the interpreted
           path; its slots hold an arbitrary witness decode and are
           never read. *)
        let witness = ref None in
        (try
           Array.iter
             (function Some _ as d -> witness := d; raise Exit | None -> ())
             dec
         with Exit -> ());
        (match !witness with
        | None ->
            (* every certificate poisoned: nothing to lay out *)
            Some interpret
        | Some w ->
            let rp, col = Graph.unsafe_csr g in
            let total = rp.(n) in
            let nbr_ids = Array.make total 0 in
            let nbr_dec = Array.make total w in
            let mine = Array.make n w in
            let ok = Array.make n true in
            for v = 0 to n - 1 do
              match dec.(v) with
              | Some d -> mine.(v) <- d
              | None -> ok.(v) <- false
            done;
            for v = 0 to n - 1 do
              let lo = rp.(v) and hi = rp.(v + 1) in
              let sorted = ref true in
              for i = lo to hi - 1 do
                let u = Array.unsafe_get col i in
                (match dec.(u) with
                | Some d -> nbr_dec.(i) <- d
                | None -> ok.(v) <- false);
                let idu = ids.(u) in
                nbr_ids.(i) <- idu;
                if i > lo && nbr_ids.(i - 1) > idu then sorted := false
              done;
              (* Rows come out of the CSR in vertex order and ids are
                 assigned ascending in vertex order for generated
                 instances, so rows are almost always already sorted;
                 otherwise a joint insertion sort of the (id, dec)
                 pairs restores the view order. *)
              if not !sorted then
                for i = lo + 1 to hi - 1 do
                  let ki = nbr_ids.(i) and di = nbr_dec.(i) in
                  let j = ref (i - 1) in
                  while !j >= lo && nbr_ids.(!j) > ki do
                    nbr_ids.(!j + 1) <- nbr_ids.(!j);
                    nbr_dec.(!j + 1) <- nbr_dec.(!j);
                    decr j
                  done;
                  nbr_ids.(!j + 1) <- ki;
                  nbr_dec.(!j + 1) <- di
                done
            done;
            (* Schemes that publish a flat plane (Scheme.flat) get a
               struct-of-arrays layout: slot [i]'s decoded fields as
               ints at [plane.(i * width ..)].  Boxed decoded records
               are placed by the major allocator's size-class free
               lists, so on graphs whose adjacency is not id-local — a
               random tree at n = 10^6 — every [nbr_dec] dereference
               is a cache miss and those misses dominate the sweep; the
               plane is one contiguous int array the row walk streams
               sequentially.  [nbr_dec] stays the sort's staging array
               and is dropped once the plane is written. *)
            match l.Scheme.flat with
            | Some f ->
                let k = f.Scheme.width in
                let plane = Array.make (total * k) 0 in
                for i = 0 to total - 1 do
                  f.Scheme.write (Array.unsafe_get nbr_dec i) plane (i * k)
                done;
                (* own fields flattened too: [mine.(v)] is a boxed
                   record behind a pointer, and one random dereference
                   per vertex is still one miss per vertex at 10⁶ *)
                let mine_plane = Array.make (n * k) 0 in
                for v = 0 to n - 1 do
                  f.Scheme.write (Array.unsafe_get mine v) mine_plane (v * k)
                done;
                Some
                  (fun v ->
                    if not (Array.unsafe_get ok v) then interpret v
                    else
                      match
                        f.Scheme.check_flat ~id_bits
                          ~me:(Array.unsafe_get ids v)
                          ~label:(Array.unsafe_get labels v)
                          ~mine:mine_plane ~mbase:(v * k)
                          ~ids:nbr_ids ~plane
                          ~lo:(Array.unsafe_get rp v)
                          ~hi:(Array.unsafe_get rp (v + 1))
                      with
                      | verdict -> verdict
                      | exception e when not (Fatal.is_fatal e) -> interpret v)
            | None ->
                Some
                  (fun v ->
                    if not (Array.unsafe_get ok v) then interpret v
                    else
                      match
                        l.Scheme.check ~id_bits ~me:(Array.unsafe_get ids v)
                          ~label:(Array.unsafe_get labels v)
                          (Array.unsafe_get mine v)
                          ~ids:nbr_ids ~decs:nbr_dec
                          ~lo:(Array.unsafe_get rp v)
                          ~hi:(Array.unsafe_get rp (v + 1))
                      with
                      | verdict -> verdict
                      | exception e when not (Fatal.is_fatal e) -> interpret v))

let compile scheme inst certs =
  if not (Atomic.get enabled) then None
  else
    match slot_hit scheme inst certs with
    | Some kernel -> Some kernel
    | None -> (
        match compile_fresh scheme inst certs with
        | None -> None
        | Some kernel ->
            Atomic.set slot
              (Some
                 {
                   c_scheme = scheme;
                   c_inst = inst;
                   c_certs = Array.copy certs;
                   c_kernel = kernel;
                 });
            Some kernel)

(* Runtime inbox views carry per-delivery certificate copies, so a
   per-instance compile keyed by physical arrays does not apply; what
   does transfer is decode-once sharing.  [view_checker] keeps a
   per-domain decode cache (Domain.DLS — domains never contend on it,
   unlike a sharded memo) keyed by certificate content, bounded so an
   adversarial fault plan cannot grow it without limit. *)
let cache_limit = 8192

let view_checker (scheme : Scheme.t) =
  if not (Atomic.get enabled) then None
  else
    match scheme.Scheme.compiled with
    | None -> None
    | Some (Scheme.Compiled l) ->
        let key = Domain.DLS.new_key (fun () -> BH.create 64) in
        Some
          (fun (view : Scheme.view) ->
            match
              let cache = Domain.DLS.get key in
              if BH.length cache > cache_limit then BH.reset cache;
              let id_bits = view.Scheme.id_bits in
              let dec_of c =
                match BH.find_opt cache c with
                | Some d -> d
                | None ->
                    let d = l.Scheme.decode ~id_bits c in
                    BH.add cache c d;
                    d
              in
              let mine = dec_of view.Scheme.cert in
              let deg = List.length view.Scheme.nbrs in
              let ids = Array.make deg 0 in
              let decs = Array.make deg mine in
              List.iteri
                (fun i (nid, c) ->
                  ids.(i) <- nid;
                  decs.(i) <- dec_of c)
                view.Scheme.nbrs;
              l.Scheme.check ~id_bits ~me:view.Scheme.me
                ~label:view.Scheme.label mine ~ids ~decs ~lo:0 ~hi:deg
            with
            | verdict -> verdict
            | exception e when not (Fatal.is_fatal e) ->
                if Metrics.is_enabled () then
                  Metrics.incr (fallback_counter ());
                scheme.Scheme.verifier view)
