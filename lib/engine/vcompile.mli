(** Ahead-of-time compilation of lowered verifiers.

    A {!Scheme.lowering} splits a radius-1 verifier into a total
    per-certificate decode stage and a check stage over pre-decoded
    values.  The interpreted verifier re-decodes every certificate at
    every vertex that sees it; this module decodes each {e distinct}
    certificate once and drives the check stage through flat
    precomputed arrays, which removes the per-vertex allocation churn
    that serializes parallel sweeps on the shared minor heap
    (DESIGN §5.5).

    Verdict equality with the interpreted path is structural: a lowered
    scheme's [verifier] {e is} [Scheme.check_lowered] over the same
    lowering the compiler uses, so both paths end in the same check
    function — reason strings included. *)

val set_enabled : bool -> unit
(** Globally enable/disable compilation (default: enabled).  With it
    disabled, {!compile} and {!view_checker} return [None] and every
    engine runs the interpreted verifier — the CLI's [--no-compiled]. *)

val is_enabled : unit -> bool

val compile :
  Scheme.t -> Instance.t -> Bitstring.t array -> (int -> Scheme.verdict) option
(** [compile scheme inst certs] builds the per-vertex kernel for one
    sweep: certificates are decoded once (per distinct bitstring — they
    are interned, so broadcast-heavy schemes decode a handful), and
    per-vertex neighbor views are laid out as id-ascending flat arrays
    mirroring {!Scheme.view_of}.  [None] when the scheme has no
    lowering or compilation is disabled; then callers fall back to the
    interpreted verifier.

    Repeated sweeps reuse the previous kernel: a single-slot cache
    keyed by physical identity of [scheme] and [inst] plus per-element
    physical equality of [certs] (bitstrings are immutable, so [==]
    certifies contents) returns the last compile when the inputs are
    verbatim the same — the runtime's round loop and benchmark ladders
    pay decode cost once, not once per sweep.  Reuse is counted in the
    approximate [vcompile.kernel_reuse] metric.  Any changed
    certificate, instance or scheme recompiles, so behavior never
    differs from a fresh compile.

    Containment: lowerings are total by contract, but if a custom one
    still raises, a non-fatal exception from decode or check makes the
    affected vertex fall back to [scheme.verifier] on its interpreted
    view (counted in [engine.compiled_fallbacks]); fatal exceptions —
    {!Localcert_util.Fatal.is_fatal} — propagate.  The kernel itself is
    safe to call concurrently from several domains: compilation
    populated every shared structure before returning.

    Compilation time is recorded as a [vcompile.<scheme>] span. *)

val view_checker : Scheme.t -> (Scheme.view -> Scheme.verdict) option
(** A compiled drop-in for [scheme.verifier] on runtime inbox views,
    where certificates arrive as per-delivery wire copies and no
    instance-wide array exists to compile against.  Decoded values are
    cached per domain (content-keyed, bounded), so repeated rounds and
    broadcast certificates decode once per domain rather than once per
    vertex per round.  Same fallback and containment behavior as
    {!compile}. *)
