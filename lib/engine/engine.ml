let with_pool_arg ?pool ?jobs f =
  match pool with
  | Some p -> f p
  | None -> Pool.with_pool ?jobs f

(* Chunks per domain for vertex sharding: enough slack that one slow
   chunk (an expensive verifier hitting a cold memo) load-balances, not
   so many that counter traffic shows up at small n.  The floor keeps
   the chunk count identical for every pool size up to 8: per-chunk
   overhead is then a constant of the sweep, not a function of
   [--jobs], which would otherwise tilt a sub-millisecond jobs ladder
   all by itself. *)
let chunk_factor = 8
let chunk_floor = 64

let run_par ?pool ?jobs ?(early_exit = false) scheme inst certs =
  with_pool_arg ?pool ?jobs (fun pool ->
      Span.with_ "run_par" @@ fun () ->
      let n = Graph.n inst.Instance.graph in
      let chunks =
        max 1 (min n (max chunk_floor (Pool.size pool * chunk_factor)))
      in
      (* chunk geometry is a pure function of (n, pool size) — stable
         for a fixed command line, but a [--jobs] above 8 changes it,
         so it is segregated into the approx section to keep the
         deterministic section jobs-invariant *)
      if Metrics.is_enabled () then begin
        Metrics.add (Metrics.counter ~approx:true "engine.chunks") chunks;
        let h = Metrics.histogram ~approx:true "engine.chunk_vertices" in
        for c = 0 to chunks - 1 do
          Metrics.observe h (((c + 1) * n / chunks) - (c * n / chunks))
        done
      end;
      (* The compiled fast path: decode-once, flat-array kernels
         (Vcompile).  Falling back to the interpreted verifier when the
         scheme has no lowering (or compilation is toggled off) keeps
         this a drop-in — both paths produce identical outcomes. *)
      let kernel = Vcompile.compile scheme inst certs in
      let check =
        match kernel with
        | Some k -> k
        | None -> fun v -> scheme.Scheme.verifier (Scheme.view_of inst certs v)
      in
      let stop = Atomic.make false in
      let per_chunk =
        Pool.map_chunks pool ~chunks (fun c ->
            (* contiguous ranges: chunk c covers [lo, hi) *)
            let lo = c * n / chunks and hi = (c + 1) * n / chunks in
            let rejections = ref [] in
            (* Only [Exit] (the early-exit signal) is caught here: a
               verifier that raises is a programming error in this
               single-assignment engine, and the exception propagates
               through [Pool].  Exception containment for compiled
               kernels lives in [Vcompile] (non-fatal falls back to the
               interpreted verifier per vertex); containment for wire
               data lives in [Runtime.run_verifier], where mangled
               deliveries make verifier failures expected. *)
            (try
               (* downto, so consing leaves the list vertex-ascending *)
               for v = hi - 1 downto lo do
                 if early_exit && Atomic.get stop then raise Exit;
                 match check v with
                 | Scheme.Accept -> ()
                 | Scheme.Reject reason ->
                     rejections := (v, reason) :: !rejections;
                     if early_exit then begin
                       Atomic.set stop true;
                       raise Exit
                     end
               done
             with Exit -> ());
            !rejections)
      in
      let rejections = List.concat (Array.to_list per_chunk) in
      let outcome =
        {
          Scheme.accepted = rejections = [];
          rejections;
          max_bits = Scheme.max_cert_bits certs;
        }
      in
      Scheme.record_outcome scheme ~early_exit outcome;
      if (not early_exit) && Metrics.is_enabled () then begin
        Metrics.add (Metrics.counter "engine.vertices_verified") n;
        if Option.is_some kernel then
          Metrics.add (Metrics.counter "engine.compiled_hits") n
      end;
      outcome)

(* Trials per Rng stream.  Any constant works; it only trades stream
   count against intra-block sequencing.  It must not depend on the job
   count, or determinism under [--jobs] would be lost. *)
let trial_block = 32

let attack_par ?pool ?jobs rng scheme inst ~trials ~max_bits =
  if trials <= 0 then { Attack.trials = 0; fooled = None; near_miss = None }
  else
    with_pool_arg ?pool ?jobs (fun pool ->
        let size = Instance.n inst in
        let blocks = (trials + trial_block - 1) / trial_block in
        let streams = Rng.split rng blocks in
        (* lowest fooling trial index found so far; max_int = none *)
        let best = Atomic.make max_int in
        let witness_lock = Mutex.create () in
        let witness = ref None in
        let record t certs =
          let rec lower () =
            let cur = Atomic.get best in
            if t < cur && not (Atomic.compare_and_set best cur t) then lower ()
          in
          lower ();
          Mutex.protect witness_lock (fun () ->
              match !witness with
              | Some (t', _) when t' <= t -> ()
              | _ -> witness := Some (t, certs))
        in
        ignore
          (Pool.map_chunks pool ~chunks:blocks (fun b ->
               let lo = b * trial_block in
               if lo < Atomic.get best then begin
                 let rng_b = streams.(b) in
                 let hi = min trials (lo + trial_block) in
                 for t = lo to hi - 1 do
                   (* Once a trial is skipped, every later trial in the
                      block is too (t grows, best only shrinks), so the
                      stream position of each executed trial is fixed. *)
                   if t < Atomic.get best then begin
                     let certs =
                       Array.init size (fun _ ->
                           Rng.bits rng_b (Rng.int rng_b (max_bits + 1)))
                     in
                     if Scheme.accepts_with scheme inst certs then
                       record t certs
                   end
                 done
               end));
        let final = Atomic.get best in
        (* near_miss stays None: which failed trial ran "last" depends
           on scheduling, and the report must not. *)
        if final = max_int then { Attack.trials; fooled = None; near_miss = None }
        else
          let certs =
            match
              Mutex.protect witness_lock (fun () -> !witness)
            with
            | Some (t, certs) ->
                assert (t = final);
                certs
            | None -> assert false
          in
          { Attack.trials = final + 1; fooled = Some certs; near_miss = None })
