(* Fixed pool of worker domains fed by a mutex-protected task queue.

   Workers block on [cv] until a task arrives or the pool stops.  A
   parallel region ([map_chunks]) does not enqueue one task per chunk:
   it enqueues one "drain" task per worker and lets every participant —
   workers and the calling domain alike — claim chunk indices from an
   atomic counter.  That keeps queue traffic at O(workers) per region
   while chunk claiming stays lock-free.

   [jobs] is the pool's *logical* size: chunk geometry (and hence the
   deterministic chunk boundaries the engine exposes) is derived from
   it.  The number of domains actually spawned is clamped to the
   hardware ([Domain.recommended_domain_count]).  Runnable domains in
   excess of cores are pure overhead in OCaml 5: every minor
   collection is a stop-the-world rendezvous, and a runnable but
   descheduled domain stalls the rendezvous for up to a scheduling
   quantum, so oversubscribed pools run *slower* than sequential
   sweeps.  Clamping keeps `--jobs 8` on a small machine semantically
   identical (same chunks, same results) while executing with only as
   much parallelism as the hardware can hold. *)

type t = {
  jobs : int; (* logical size: drives chunk geometry *)
  worker_count : int; (* physical helper domains actually spawned *)
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

(* Worker [i]'s task executions run under a span named after the
   worker, so `pool.worker.<i>` timings give per-domain busy time and
   task counts (approximate by construction: which worker claims a
   task is scheduling).  Completions also bump a total — every
   submitted task is executed exactly once, no matter by whom, but the
   task count itself depends on the pool size, so it lives in the
   approx section alongside the submission counter. *)
let completed () =
  if Metrics.is_enabled () then
    Metrics.incr (Metrics.counter ~approx:true "pool.tasks_completed")

let worker i t =
  let span_name = Printf.sprintf "pool.worker.%d" i in
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.cv t.m
    done;
    match Queue.take_opt t.queue with
    | None ->
        (* stopped and drained *)
        Mutex.unlock t.m
    | Some task ->
        Mutex.unlock t.m;
        Span.with_ span_name task;
        completed ();
        loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> Domain.recommended_domain_count ()
    | Some j ->
        if j > 128 then invalid_arg "Pool.create: more than 128 jobs";
        max 1 j
  in
  (* The calling domain participates in every region, so a machine
     with c cores supports at most c - 1 helpers. *)
  let worker_count =
    max 0 (min jobs (Domain.recommended_domain_count ()) - 1)
  in
  let t =
    {
      jobs;
      worker_count;
      queue = Queue.create ();
      m = Mutex.create ();
      cv = Condition.create ();
      stopped = false;
      workers = [];
    }
  in
  t.workers <-
    List.init worker_count (fun i -> Domain.spawn (fun () -> worker i t));
  t

let size t = t.jobs

let shutdown t =
  let to_join =
    Mutex.protect t.m (fun () ->
        if t.stopped then []
        else begin
          t.stopped <- true;
          Condition.broadcast t.cv;
          let ws = t.workers in
          t.workers <- [];
          ws
        end)
  in
  List.iter Domain.join to_join

(* Enqueue [count] copies of [task] with one lock acquisition and one
   wake-up.  Signalling per task would take and release the queue lock
   [count] times and thundering-herd the workers once per push; a batch
   is one broadcast that wakes exactly the sleepers that can claim
   work. *)
let submit_batch t count task =
  if count < 0 then invalid_arg "Pool.submit_batch: negative count"
  else if count > 0 then begin
    Mutex.protect t.m (fun () ->
        if t.stopped then invalid_arg "Pool: already shut down";
        for _ = 1 to count do
          Queue.push task t.queue
        done;
        if count = 1 then Condition.signal t.cv else Condition.broadcast t.cv);
    if Metrics.is_enabled () then
      Metrics.add (Metrics.counter ~approx:true "pool.tasks_submitted") count
  end

let map_chunks (type a) t ~chunks (f : int -> a) : a array =
  if chunks < 0 then invalid_arg "Pool.map_chunks: negative chunk count";
  if chunks = 0 then [||]
  else if t.worker_count = 0 || chunks = 1 then begin
    if t.stopped then invalid_arg "Pool: already shut down";
    Array.init chunks f
  end
  else begin
    let results : a option array = Array.make chunks None in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let pending = Atomic.make chunks in
    let done_m = Mutex.create () in
    let done_cv = Condition.create () in
    let drain () =
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < chunks then begin
          (match f i with
          | v -> results.(i) <- Some v
          | exception e ->
              ignore
                (Atomic.compare_and_set error None
                   (Some (e, Printexc.get_raw_backtrace ()))));
          if Atomic.fetch_and_add pending (-1) = 1 then
            Mutex.protect done_m (fun () -> Condition.broadcast done_cv);
          claim ()
        end
      in
      claim ()
    in
    (* Never more helpers than chunks; the caller is one participant. *)
    let helpers = min t.worker_count (chunks - 1) in
    submit_batch t helpers drain;
    drain ();
    Mutex.lock done_m;
    while Atomic.get pending > 0 do
      Condition.wait done_cv done_m
    done;
    Mutex.unlock done_m;
    (* Coverage: with fewer chunks than jobs some helpers find nothing
       to claim — every chunk must still have been claimed exactly
       once. *)
    assert (Atomic.get next >= chunks);
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* no error implies every chunk completed *))
      results
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
