(** Domain-parallel execution of verifiers and soundness attacks.

    The two workloads the paper's evaluation spends its time in are
    embarrassingly parallel: {!Scheme.run} evaluates an independent
    radius-1 verifier at every vertex, and {!Attack}-style probing
    evaluates independent certificate assignments.  This module shards
    both across a {!Pool} of domains.

    {!run_par} is a drop-in replacement for {!Scheme.run}: with early
    exit disabled it returns an identical {!Scheme.outcome} — same
    [accepted], same [max_bits], and the same [rejections] list in the
    same (vertex-ascending) order, reasons included.  {!attack_par} is
    deterministic in the seed {e independently of the job count}: trial
    randomness comes from {!Rng.split} streams keyed by trial position,
    not by domain, so [--jobs 1] and [--jobs 8] report the same verdict
    and the same fooling witness.

    Verifiers run concurrently from several domains, so a scheme's
    [verifier] must be thread-safe.  Every scheme in this library is:
    views and instances are immutable, and the three closures that memo
    across calls ([Kernel_mso]'s evaluation cache and the intern tables
    of [Tree_automaton.product] / [Capped_type]) are mutex-guarded. *)

val run_par :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?early_exit:bool ->
  Scheme.t ->
  Instance.t ->
  Bitstring.t array ->
  Scheme.outcome
(** [run_par scheme inst certs] executes the verifier at every vertex,
    sharding contiguous vertex ranges across domains.

    - [?pool] runs on an existing pool (the cheap path — reuse one pool
      across many runs); otherwise a fresh pool of [?jobs] domains
      (default {!Domain.recommended_domain_count}) is created for this
      call and shut down afterwards.
    - [?early_exit] (default [false]) stops every domain at the first
      rejection, via a shared atomic flag; the outcome then carries at
      least one rejection but not necessarily all of them.  With the
      default, the outcome equals [Scheme.run scheme inst certs]
      exactly. *)

val attack_par :
  ?pool:Pool.t ->
  ?jobs:int ->
  Localcert_util.Rng.t ->
  Scheme.t ->
  Instance.t ->
  trials:int ->
  max_bits:int ->
  Attack.report
(** [attack_par rng scheme inst ~trials ~max_bits] probes [trials]
    uniform random certificate assignments (lengths 0..[max_bits]), as
    {!Attack.random_assignments} does, fanned across domains.

    Determinism: the trial sequence is partitioned into fixed-size
    blocks, each drawing from its own {!Rng.split} stream, and the
    report is canonicalized to the {e lowest-index} fooling trial — so
    the result (verdict, witness, and [trials] = index of the fooling
    trial + 1) depends only on [rng]'s state and [trials], never on the
    job count or scheduling.  Domains stop early once every index below
    the current best fooling trial has been examined. *)
