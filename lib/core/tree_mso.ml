module TA = Localcert_automata.Tree_automaton

type cert = { dist3 : int; state : int; fingerprint : int }

let fingerprint_bits = 16

let fingerprint (auto : TA.t) = Hashtbl.hash auto.TA.name land 0xFFFF

let encode ~state_bits c =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.fixed w ~width:2 c.dist3;
  Bitbuf.Writer.fixed w ~width:state_bits c.state;
  Bitbuf.Writer.fixed w ~width:fingerprint_bits c.fingerprint;
  Bitbuf.Writer.contents w

let decode ~state_bits b =
  Bitbuf.decode b (fun r ->
      let dist3 = Bitbuf.Reader.fixed r ~width:2 in
      let state = Bitbuf.Reader.fixed r ~width:state_bits in
      let fingerprint = Bitbuf.Reader.fixed r ~width:fingerprint_bits in
      { dist3; state; fingerprint })

(* Fixed-table automata report their exact state count up front; lazy
   ones (products, capped-type compilations) may report 0 or 1 before
   they have been run, so give those a roomy default.  The prover
   re-checks that every state fits (see [prover_certs]). *)
let default_state_bits (auto : TA.t) =
  let count = auto.TA.state_count () in
  if count >= 2 then Combin.ceil_log2 count else 8

(* Prover: run the automaton from [root], returning per-vertex
   (dist mod 3, state). *)
let label_run (inst : Instance.t) (auto : TA.t) root =
  let g = inst.Instance.graph in
  let bt = Graph.bfs_tree g root in
  let dist = bt.Graph.dist in
  let states = Array.make (Graph.n g) (-1) in
  (* bottom-up: reversed BFS discovery order is nonincreasing
     distance, so children are always labelled before their parent —
     no comparison sort, no per-vertex neighbor array *)
  let order = bt.Graph.order in
  for i = Array.length order - 1 downto 0 do
    let v = order.(i) in
    let dv = dist.(v) + 1 in
    let child_states =
      Graph.fold_neighbors g v
        (fun acc w -> if dist.(w) = dv then states.(w) :: acc else acc)
        []
    in
    states.(v) <-
      auto.TA.delta ~label:inst.Instance.labels.(v)
        ~counts:(TA.counts_of_list child_states)
  done;
  (dist, states)

let prover_certs ?state_bits (inst : Instance.t) (auto : TA.t) roots =
  if not (Graph.is_tree inst.Instance.graph) then None
  else
    let accepting_root =
      List.find_opt
        (fun r ->
          let _, states = label_run inst auto r in
          auto.TA.accepting states.(r))
        roots
    in
    match accepting_root with
    | None -> None
    | Some root ->
        let dist, states = label_run inst auto root in
        let fp = fingerprint auto in
        let sb =
          match state_bits with
          | Some b -> b
          | None -> default_state_bits auto
        in
        let max_state = Array.fold_left max 0 states in
        if max_state >= 1 lsl sb then
          invalid_arg
            (Printf.sprintf
               "Tree_mso: automaton %s reached state %d, which does not fit \
                the %d-bit state field; pass ~state_bits"
               auto.TA.name max_state sb);
        Some
          (Array.init (Instance.n inst) (fun v ->
               encode ~state_bits:sb
                 { dist3 = dist.(v) mod 3; state = states.(v); fingerprint = fp }))

(* The lowered checker.  Certificates decode (totally) to [cert
   option]; the check stage walks the pre-decoded neighbor array with
   counters instead of building filtered lists.  For unlabeled trees
   (label 0, the common case) the child-state transition goes through a
   precomputed flat table (one saturating add per child, no
   allocation); any out-of-range state falls back to the exact
   [delta].  Both the interpreted verifier and the compiled engine path
   run this same [check], so their verdicts agree by construction. *)

let nbr_cert (d : cert option) =
  match d with Some c -> c | None -> assert false

let lowering ~state_bits (auto : TA.t) : cert option Scheme.lowering =
  let fp = fingerprint auto in
  let table0 = TA.tabulate auto ~label:0 in
  let slow_transition ~label ~down decs ~lo ~hi =
    let states = ref [] in
    for i = hi - 1 downto lo do
      let c = nbr_cert decs.(i) in
      if c.dist3 = down then states := c.state :: !states
    done;
    auto.TA.delta ~label ~counts:(TA.counts_of_list !states)
  in
  let transition ~label ~down decs ~lo ~hi =
    match table0 with
    | Some tbl when label = 0 ->
        let packed = ref 0 in
        let i = ref lo in
        while !packed >= 0 && !i < hi do
          let c = nbr_cert decs.(!i) in
          if c.dist3 = down then packed := TA.table_add tbl !packed c.state;
          incr i
        done;
        if !packed >= 0 then TA.table_delta tbl !packed
        else slow_transition ~label ~down decs ~lo ~hi
    | _ -> slow_transition ~label ~down decs ~lo ~hi
  in
  let check ~id_bits:_ ~me:_ ~label mine ~ids:_ ~decs ~lo ~hi : Scheme.verdict
      =
    match mine with
    | None -> Reject "malformed certificate"
    | Some mine ->
        if mine.fingerprint <> fp then Reject "automaton fingerprint mismatch"
        else if mine.dist3 > 2 then Reject "invalid mod-3 distance"
        else
          let rec malformed i =
            i < hi
            && match decs.(i) with None -> true | Some _ -> malformed (i + 1)
          in
          if malformed lo then Reject "malformed neighbor certificate"
          else
            let rec bad_fp i =
              i < hi && ((nbr_cert decs.(i)).fingerprint <> fp || bad_fp (i + 1))
            in
            if bad_fp lo then Reject "neighbor fingerprint mismatch"
            else begin
              let up = (mine.dist3 + 2) mod 3
              and down = (mine.dist3 + 1) mod 3 in
              let parents = ref 0 and children = ref 0 in
              for i = lo to hi - 1 do
                let c = nbr_cert decs.(i) in
                if c.dist3 = up then incr parents
                else if c.dist3 = down then incr children
              done;
              if !parents + !children <> hi - lo then
                Reject "neighbor at my own mod-3 distance"
              else if !parents >= 2 then Reject "two parents"
              else if !parents = 1 then
                if transition ~label ~down decs ~lo ~hi <> mine.state then
                  Reject "state is not the transition of the children states"
                else Accept
              else if mine.dist3 <> 0 then Reject "root must have distance 0"
              else if transition ~label ~down decs ~lo ~hi <> mine.state then
                Reject "root state is not the transition of the children"
              else if not (auto.TA.accepting mine.state) then
                Reject "root state is not accepting"
              else Accept
            end
  in
  { decode = (fun ~id_bits:_ c -> decode ~state_bits c); check; flat = None }

let make ?state_bits auto =
  let sb = match state_bits with Some b -> b | None -> default_state_bits auto in
  Scheme.of_lowering
    ~name:("tree-mso[" ^ auto.TA.name ^ "]")
    ~prover:(fun inst ->
      prover_certs ~state_bits:sb inst auto (Graph.vertices inst.Instance.graph))
    (lowering ~state_bits:sb auto)

let make_with_root ?state_bits ~root auto =
  let sb = match state_bits with Some b -> b | None -> default_state_bits auto in
  Scheme.of_lowering
    ~name:(Printf.sprintf "tree-mso[%s]@%d" auto.TA.name root)
    ~prover:(fun inst -> prover_certs ~state_bits:sb inst auto [ root ])
    (lowering ~state_bits:sb auto)

(* The literal certificate of Appendix C.1: mod-3 counter, automaton
   description (the encoded UOP table), and run state. *)
let make_table table =
  let module U = Localcert_automata.Uop in
  let auto = U.to_tree_automaton table in
  let table_bits = U.encode table in
  let sb = max 1 (Combin.ceil_log2 (max 2 table.U.states)) in
  let encode_full dist3 state =
    let w = Bitbuf.Writer.create () in
    Bitbuf.Writer.fixed w ~width:2 dist3;
    Bitbuf.Writer.fixed w ~width:sb state;
    Bitbuf.Writer.contents w
    |> fun prefix -> Bitstring.append prefix table_bits
  in
  let decode_full c =
    let expected_len = 2 + sb + Bitstring.length table_bits in
    if Bitstring.length c <> expected_len then None
    else
      let prefix = Bitstring.sub c ~pos:0 ~len:(2 + sb) in
      let rest = Bitstring.sub c ~pos:(2 + sb) ~len:(Bitstring.length table_bits) in
      if not (Bitstring.equal rest table_bits) then None
      else
        Bitbuf.decode prefix (fun r ->
            let dist3 = Bitbuf.Reader.fixed r ~width:2 in
            let state = Bitbuf.Reader.fixed r ~width:sb in
            (dist3, state))
  in
  let prover (inst : Instance.t) =
    if not (Graph.is_tree inst.Instance.graph) then None
    else
      let roots = Graph.vertices inst.Instance.graph in
      let accepting_root =
        List.find_opt
          (fun r ->
            let _, states = label_run inst auto r in
            auto.TA.accepting states.(r))
          roots
      in
      match accepting_root with
      | None -> None
      | Some root ->
          let dist, states = label_run inst auto root in
          Some
            (Array.init (Instance.n inst) (fun v ->
                 encode_full (dist.(v) mod 3) states.(v)))
  in
  let verifier (view : Scheme.view) : Scheme.verdict =
    match decode_full view.cert with
    | None -> Reject "malformed certificate or wrong automaton description"
    | Some (dist3, state) -> (
        let nbrs = List.map (fun (_, c) -> decode_full c) view.nbrs in
        if List.exists (fun c -> c = None) nbrs then
          Reject "malformed neighbor certificate"
        else
          let nbrs = List.map Option.get nbrs in
          let up = (dist3 + 2) mod 3 and down = (dist3 + 1) mod 3 in
          let parents = List.filter (fun (d, _) -> d = up) nbrs in
          let children = List.filter (fun (d, _) -> d = down) nbrs in
          if List.length parents + List.length children <> List.length nbrs
          then Reject "neighbor at my own mod-3 distance"
          else
            let expected =
              auto.TA.delta ~label:view.label
                ~counts:(TA.counts_of_list (List.map snd children))
            in
            match parents with
            | _ :: _ :: _ -> Reject "two parents"
            | [ _ ] ->
                if expected <> state then Reject "transition mismatch"
                else Accept
            | [] ->
                if dist3 <> 0 then Reject "root must have distance 0"
                else if expected <> state then Reject "root transition mismatch"
                else if not (auto.TA.accepting state) then
                  Reject "root state not accepting"
                else Accept)
  in
  {
    Scheme.name = "tree-mso-table[" ^ table.U.name ^ "]";
    prover;
    verifier;
    compiled = None;
  }

let with_tree_promise_check scheme =
  Scheme.conjoin
    ~name:(scheme.Scheme.name ^ "+acyclic")
    Spanning_tree.acyclicity scheme

let cert_size ?state_bits auto inst =
  let scheme = make ?state_bits auto in
  Scheme.certificate_size scheme inst
