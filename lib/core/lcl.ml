module U = Localcert_automata.Uop
module TA = Localcert_automata.Tree_automaton

type t = { name : string; alphabet : int; constraints : U.constr array }

let valid_at lcl ~label ~neighbor_labels =
  if label < 0 || label >= lcl.alphabet then false
  else
    let counts = TA.counts_of_list neighbor_labels in
    U.holds lcl.constraints.(label) ~counts

let valid lcl g ~labels =
  Graph.fold_vertices
    (fun v acc ->
      acc
      && valid_at lcl ~label:labels.(v)
           ~neighbor_labels:
             (Array.to_list (Graph.neighbors g v) |> List.map (fun w -> labels.(w))))
    g true

let proper_coloring ~colors =
  if colors < 1 then invalid_arg "Lcl.proper_coloring";
  {
    name = Printf.sprintf "proper-%d-coloring" colors;
    alphabet = colors;
    constraints = Array.init colors (fun c -> U.count_le c 0);
  }

let maximal_independent_set =
  {
    name = "maximal-independent-set";
    alphabet = 2;
    constraints = [| U.count_ge 1 1 (* dominated *); U.count_le 1 0 (* independent *) |];
  }

let weak_2_coloring =
  {
    name = "weak-2-coloring";
    alphabet = 2;
    constraints = [| U.count_ge 1 1; U.count_ge 0 1 |];
  }

let at_most_k_neighbors_in_set k =
  {
    name = Printf.sprintf "at-most-%d-neighbors-in-set" k;
    alphabet = 2;
    constraints = [| U.count_le 1 k; U.Tru |];
  }

let greedy_coloring ~colors g =
  let n = Graph.n g in
  let labels = Array.make n (-1) in
  let ok = ref true in
  for v = 0 to n - 1 do
    let used =
      Array.to_list (Graph.neighbors g v)
      |> List.filter_map (fun w -> if labels.(w) >= 0 then Some labels.(w) else None)
    in
    match
      List.find_opt (fun c -> not (List.mem c used)) (List.init colors Fun.id)
    with
    | Some c -> labels.(v) <- c
    | None -> ok := false
  done;
  if !ok then Some labels else None

let greedy_mis g =
  let n = Graph.n g in
  let labels = Array.make n 0 in
  for v = 0 to n - 1 do
    let blocked =
      Array.exists (fun w -> w < v && labels.(w) = 1) (Graph.neighbors g v)
    in
    if not blocked then labels.(v) <- 1
  done;
  labels

let bfs_parity_coloring g =
  if Graph.n g = 0 then [||]
  else begin
    let dist = Graph.bfs_dist g 0 in
    Array.map (fun d -> if d >= 0 then d mod 2 else 0) dist
  end

(* ------------------------------------------------------------------ *)
(* Certification                                                        *)
(* ------------------------------------------------------------------ *)

let label_bits lcl = max 1 (Combin.ceil_log2 (max 2 lcl.alphabet))

let encode_label lcl l =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.fixed w ~width:(label_bits lcl) l;
  Bitbuf.Writer.contents w

let decode_label lcl c =
  match
    Bitbuf.decode c (fun r -> Bitbuf.Reader.fixed r ~width:(label_bits lcl))
  with
  | Some l when l < lcl.alphabet -> Some l
  | _ -> None

let verifier_core lcl ~check_own (view : Scheme.view) : Scheme.verdict =
  match decode_label lcl view.cert with
  | None -> Reject "malformed label certificate"
  | Some mine -> (
      if check_own && mine <> view.label then
        Reject "certificate does not match my input label"
      else
        let nbrs = List.map (fun (_, c) -> decode_label lcl c) view.nbrs in
        if List.exists (fun l -> l = None) nbrs then
          Reject "malformed neighbor certificate"
        else
          let neighbor_labels = List.map Option.get nbrs in
          if valid_at lcl ~label:mine ~neighbor_labels then Accept
          else Reject "local constraint violated")

let scheme_of_labeled lcl =
  {
    Scheme.name = "lcl[" ^ lcl.name ^ "]";
    prover =
      (fun inst ->
        if valid lcl inst.Instance.graph ~labels:inst.Instance.labels then
          Some (Array.map (encode_label lcl) inst.Instance.labels)
        else None);
    verifier = verifier_core lcl ~check_own:true;
    compiled = None;
  }

let scheme_of_search lcl ~solve =
  {
    Scheme.name = "lcl-exists[" ^ lcl.name ^ "]";
    prover =
      (fun inst ->
        match solve inst.Instance.graph with
        | Some labels when valid lcl inst.Instance.graph ~labels ->
            Some (Array.map (encode_label lcl) labels)
        | _ -> None);
    verifier = verifier_core lcl ~check_own:false;
    compiled = None;
  }
