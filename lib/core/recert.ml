(* Region-scoped re-certification for the self-healing runtime
   (DESIGN §5.9).

   After churn or corruption, the runtime knows a seed set of suspect
   vertices (rejecting verifiers, edit endpoints).  Correct
   certificates for most schemes are global objects (spanning-tree
   distances, elimination-forest ancestries), but they only need to be
   {e recomputed} where the topology or damage actually reaches: the
   union of connected components containing a seed.  When that region
   is a strict subset of the graph, the prover runs on the induced
   sub-instance — with the original ids, labels and the parent's
   id-encoding width, so the certificates are bit-compatible — and the
   spliced assignment is checked by one early-exit [Scheme.run] on the
   full instance.  Any failure of the scoped path (prover declines or
   raises, or the splice does not verify — e.g. a model-based prover
   that cannot be restricted to a sub-instance) falls back to one full
   prover run.  [None] only when the full prover itself declines: the
   current topology is a no-instance and no certificate assignment can
   heal it. *)

type outcome = {
  certs : Bitstring.t array;  (** full interned assignment, [n] entries *)
  changed : int list;  (** vertices whose certificate differs, ascending *)
  scoped : bool;  (** true if the region prover sufficed *)
}

(* Union of components containing a seed, as a mask — multi-source
   BFS over a flat int queue, same shape as Graph.bfs_tree. *)
let region_mask graph seeds =
  let n = Graph.n graph in
  let reached = Array.make n false in
  let queue = Array.make n 0 in
  let tail = ref 0 in
  List.iter
    (fun s ->
      if not reached.(s) then begin
        reached.(s) <- true;
        queue.(!tail) <- s;
        incr tail
      end)
    seeds;
  let head = ref 0 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    Graph.iter_neighbors graph u (fun v ->
        if not reached.(v) then begin
          reached.(v) <- true;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  (reached, !tail)

let prove_contained scheme inst =
  match scheme.Scheme.prover inst with
  | certs -> certs
  | exception e when not (Fatal.is_fatal e) -> None

let recertify (scheme : Scheme.t) inst ~dirty ~old =
  let n = Instance.n inst in
  let graph = inst.Instance.graph in
  if Array.length old <> n then
    invalid_arg "Recert.recertify: certificate count does not match";
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Recert.recertify: seed vertex %d out of [0,%d)" v n))
    dirty;
  let full () =
    Option.map
      (fun certs -> (Cert_store.intern_all certs, false))
      (prove_contained scheme inst)
  in
  let attempt =
    if dirty = [] then Some (Cert_store.intern_all (Array.copy old), true)
    else begin
      let reached, count = region_mask graph dirty in
      if count >= n then full ()
      else begin
        let region = ref [] in
        for v = n - 1 downto 0 do
          if reached.(v) then region := v :: !region
        done;
        let sub, back = Graph.induced graph !region in
        let scoped =
          match
            Instance.make
              ~labels:(Array.map (fun v -> inst.Instance.labels.(v)) back)
              ~ids:(Array.map (fun v -> inst.Instance.ids.(v)) back)
              ~id_bits:inst.Instance.id_bits sub
          with
          | sub_inst -> (
              match prove_contained scheme sub_inst with
              | Some sub_certs
                when Array.length sub_certs = Array.length back ->
                  let certs = Array.copy old in
                  Array.iteri (fun i v -> certs.(v) <- sub_certs.(i)) back;
                  let certs = Cert_store.intern_all certs in
                  (* The region prover never saw the rest of the graph;
                     accept its certificates only if the whole spliced
                     assignment verifies.  Schemes whose certificates
                     encode genuinely global structure fail here and
                     take the full-prover path. *)
                  if (Scheme.run ~early_exit:true scheme inst certs).accepted
                  then Some (certs, true)
                  else None
              | _ -> None)
          | exception e when not (Fatal.is_fatal e) -> None
        in
        match scoped with Some _ -> scoped | None -> full ()
      end
    end
  in
  match attempt with
  | None -> None
  | Some (certs, scoped) ->
      let changed = ref [] in
      for v = n - 1 downto 0 do
        if not (Bitstring.equal certs.(v) old.(v)) then changed := v :: !changed
      done;
      Some { certs; changed = !changed; scoped }
