let strip_existentials phi =
  let rec quantifier_free : Formula.t -> bool = function
    | True | False | Eq _ | Adj _ | Lab _ -> true
    | Mem _ -> false
    | Not f -> quantifier_free f
    | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) ->
        quantifier_free f && quantifier_free g
    | Exists _ | Forall _ | Exists_set _ | Forall_set _ -> false
  in
  let rec strip acc : Formula.t -> (string list * Formula.t) option = function
    | Exists (x, body) -> strip (x :: acc) body
    | matrix when quantifier_free matrix -> Some (List.rev acc, matrix)
    | _ -> None
  in
  strip [] phi

let eval_matrix ~vars ~ids ~adj phi =
  let index x =
    match List.find_index (String.equal x) vars with
    | Some i -> i
    | None -> invalid_arg ("Existential_fo: unbound variable " ^ x)
  in
  let rec eval : Formula.t -> bool = function
    | True -> true
    | False -> false
    | Eq (x, y) -> ids.(index x) = ids.(index y)
    | Adj (x, y) -> adj (index x) (index y)
    | Lab _ | Mem _ -> invalid_arg "Existential_fo: unsupported atom"
    | Not f -> not (eval f)
    | And (f, g) -> eval f && eval g
    | Or (f, g) -> eval f || eval g
    | Imp (f, g) -> (not (eval f)) || eval g
    | Iff (f, g) -> eval f = eval g
    | Exists _ | Forall _ | Exists_set _ | Forall_set _ ->
        invalid_arg "Existential_fo: not quantifier-free"
  in
  eval phi

(* Shared part: witness ids and the strict upper triangle of their
   adjacency matrix. *)
let encode_shared ~id_bits ids matrix =
  let k = Array.length ids in
  let w = Bitbuf.Writer.create () in
  Array.iter (fun id -> Bitbuf.Writer.fixed w ~width:id_bits id) ids;
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      Bitbuf.Writer.bit w matrix.(i).(j)
    done
  done;
  Bitbuf.Writer.contents w

let decode_shared ~id_bits ~k b =
  Bitbuf.decode b (fun r ->
      let ids = Array.init k (fun _ -> Bitbuf.Reader.fixed r ~width:id_bits) in
      let matrix = Array.make_matrix k k false in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let bit = Bitbuf.Reader.bit r in
          matrix.(i).(j) <- bit;
          matrix.(j).(i) <- bit
        done
      done;
      (ids, matrix))

let make phi =
  (* accept any sentence whose prenex normal form is existential
     (Lemma 2.1's phrasing), not only syntactically prenex inputs *)
  let vars, matrix_formula =
    match strip_existentials phi with
    | Some p -> p
    | None -> (
        match
          if Formula.is_fo phi then strip_existentials (Transform.prenex phi)
          else None
        with
        | Some p -> p
        | None ->
            invalid_arg
              "Existential_fo.make: the sentence has no existential prenex form")
  in
  let k = List.length vars in
  let name = "existential-fo[" ^ Formula.to_string phi ^ "]" in
  let prover (inst : Instance.t) =
    if not (Graph.is_connected inst.Instance.graph) then None
    else begin
      let size = Instance.n inst in
      (* brute-force witness search over n^k tuples *)
      let tuple = Array.make k 0 in
      let found = ref None in
      let rec search i =
        if !found <> None then ()
        else if i = k then begin
          let ids = Array.map (fun v -> inst.Instance.ids.(v)) tuple in
          let adj a b = Graph.mem_edge inst.Instance.graph tuple.(a) tuple.(b) in
          if eval_matrix ~vars ~ids ~adj matrix_formula then
            found := Some (Array.copy tuple)
        end
        else
          for v = 0 to size - 1 do
            tuple.(i) <- v;
            search (i + 1)
          done
      in
      search 0;
      match !found with
      | None -> None
      | Some witnesses ->
          let ids = Array.map (fun v -> inst.Instance.ids.(v)) witnesses in
          let madj = Array.make_matrix k k false in
          for i = 0 to k - 1 do
            for j = 0 to k - 1 do
              madj.(i).(j) <-
                i <> j
                && Graph.mem_edge inst.Instance.graph witnesses.(i) witnesses.(j)
            done
          done;
          let shared = encode_shared ~id_bits:inst.Instance.id_bits ids madj in
          let trees =
            Array.map
              (fun root -> Spanning.bfs inst.Instance.graph ~root)
              witnesses
          in
          Some
            (Array.init size (fun v ->
                 let w = Bitbuf.Writer.create () in
                 Bitbuf.Writer.bitstring w shared;
                 Array.iter
                   (fun (sp : Spanning.t) ->
                     Bitbuf.Writer.nat w sp.dist.(v);
                     let parent =
                       if sp.parent.(v) = -1 then v else sp.parent.(v)
                     in
                     Bitbuf.Writer.fixed w ~width:inst.Instance.id_bits
                       inst.Instance.ids.(parent))
                   trees;
                 Bitbuf.Writer.contents w))
    end
  in
  let split ~id_bits c =
    Bitbuf.decode c (fun r ->
        let shared = Bitbuf.Reader.bitstring r in
        let trees =
          List.init k (fun _ ->
              let dist = Bitbuf.Reader.nat r in
              let parent_id = Bitbuf.Reader.fixed r ~width:id_bits in
              (dist, parent_id))
        in
        (shared, trees))
  in
  let verifier (view : Scheme.view) : Scheme.verdict =
    let id_bits = view.id_bits in
    match split ~id_bits view.cert with
    | None -> Reject "malformed certificate"
    | Some (shared_bits, my_trees) -> (
        match decode_shared ~id_bits ~k shared_bits with
        | None -> Reject "malformed shared part"
        | Some (ids, madj) -> (
            let nbrs = List.map (fun (nid, c) -> (nid, split ~id_bits c)) view.nbrs in
            if List.exists (fun (_, p) -> p = None) nbrs then
              Reject "malformed neighbor certificate"
            else
              let nbrs = List.map (fun (nid, p) -> (nid, Option.get p)) nbrs in
              if
                List.exists
                  (fun (_, (s, _)) -> not (Bitstring.equal s shared_bits))
                  nbrs
              then Reject "shared parts disagree"
              else begin
                (* the k spanning-tree checks *)
                let rec check_trees i trees =
                  match trees with
                  | [] -> Ok ()
                  | (dist, parent_id) :: rest -> (
                      let cert =
                        {
                          Spanning_tree.root_id = ids.(i);
                          dist;
                          parent_id;
                        }
                      in
                      let neighbors =
                        List.map
                          (fun (nid, (_, ts)) ->
                            let ndist, nparent = List.nth ts i in
                            ( nid,
                              {
                                Spanning_tree.root_id = ids.(i);
                                dist = ndist;
                                parent_id = nparent;
                              } ))
                          nbrs
                      in
                      match
                        Spanning_tree.check_tree_view ~me:view.me cert
                          ~neighbors
                      with
                      | Ok () -> check_trees (i + 1) rest
                      | Error e ->
                          Error (Printf.sprintf "tree %d: %s" i e))
                in
                match check_trees 0 my_trees with
                | Error e -> Reject e
                | Ok () ->
                    (* witness-side adjacency row check *)
                    let neighbor_ids = List.map fst view.nbrs in
                    let row_ok = ref true in
                    Array.iteri
                      (fun i idi ->
                        if idi = view.me then
                          Array.iteri
                            (fun j idj ->
                              if j <> i then begin
                                let actual =
                                  if idj = view.me then false
                                  else List.mem idj neighbor_ids
                                in
                                if madj.(i).(j) <> actual then row_ok := false
                              end)
                            ids)
                      ids;
                    if not !row_ok then
                      Reject "matrix misstates a witness adjacency"
                    else if
                      eval_matrix ~vars ~ids
                        ~adj:(fun a b -> madj.(a).(b))
                        matrix_formula
                    then Accept
                    else Reject "matrix does not satisfy the sentence"
              end))
  in
  { Scheme.name; prover; verifier; compiled = None }
