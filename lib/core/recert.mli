(** Region-scoped re-certification: the prover side of self-healing.

    The runtime's [~recover] mode calls {!recertify} after a detection:
    given the current (committed) topology, the certificates the nodes
    hold now, and a seed set of suspect vertices, it produces a correct
    full assignment while re-running the prover on as little of the
    graph as soundness allows — the union of connected components
    containing a seed.  See DESIGN §5.9. *)

type outcome = {
  certs : Bitstring.t array;
      (** the healed assignment: [n] interned certificates *)
  changed : int list;
      (** vertices whose certificate differs from [old], ascending —
          the nodes that must re-adopt *)
  scoped : bool;
      (** [true] when the region prover sufficed; [false] when the
          full-instance prover ran *)
}

val recertify :
  Scheme.t ->
  Instance.t ->
  dirty:int list ->
  old:Bitstring.t array ->
  outcome option
(** [recertify scheme inst ~dirty ~old] re-proves [inst] around the
    seed set [dirty].  When the seeds' components cover a strict
    subset of the vertices, the prover runs on that induced
    sub-instance (original ids and labels, parent [id_bits] width so
    certificates are bit-compatible) and the splice of its output into
    [old] is accepted only if a full early-exit {!Scheme.run} verifies
    it; otherwise — including on any scoped-path failure — the prover
    runs on the whole instance.  [None] means even the full prover
    declined: the current topology is a no-instance of the property
    and no certificate assignment exists.

    Deterministic (no randomness, sequential), so recovery never
    perturbs the runtime's jobs-determinism contract.  Raises
    [Invalid_argument] if [old] has the wrong length or a seed is out
    of range; fatal exceptions ({!Localcert_util.Fatal}) from the
    prover propagate. *)
