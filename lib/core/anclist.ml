type tree_entry = { exit_id : int; dist : int; parent_id : int }

type 'a entry = { aid : int; ann : 'a; tree : tree_entry option }

type 'a codec = {
  write : Bitbuf.Writer.t -> 'a -> unit;
  read : Bitbuf.Reader.t -> 'a;
  equal : 'a -> 'a -> bool;
}

let unit_codec =
  { write = (fun _ () -> ()); read = (fun _ -> ()); equal = (fun () () -> true) }

(* ------------------------------------------------------------------ *)
(* Prover                                                               *)
(* ------------------------------------------------------------------ *)

let build (inst : Instance.t) tree ~ann =
  let g = inst.Instance.graph in
  if not (Elimination.is_model tree g) then
    invalid_arg "Anclist.build: not a model";
  if not (Elimination.is_coherent tree g) then
    invalid_arg "Anclist.build: model is not coherent";
  let size = Graph.n g in
  let id v = inst.Instance.ids.(v) in
  let depth = Elimination.depth tree in
  let kids = Elimination.children_all tree in
  (* Subtree vertex lists, sorted ascending (the exit-vertex choice
     below depends on this order), built bottom-up so the whole pass
     is O(Σ|subtree|) = O(n · depth) rather than O(n²). *)
  let subs = Array.make size [] in
  let by_depth = Array.init size Fun.id in
  Array.sort (fun a b -> Int.compare depth.(b) depth.(a)) by_depth;
  Array.iter
    (fun v ->
      subs.(v) <-
        List.sort Int.compare
          (v :: List.concat_map (fun c -> subs.(c)) kids.(v)))
    by_depth;
  (* For each vertex u and each proper-depth slot j: u's record in the
     spanning tree of G_v for its ancestor v at depth j+1.  Filled per
     ancestor v in one sweep over its subtree, so no per-(u, v) lookup
     structure is needed. *)
  let tree_parts =
    Array.init size (fun u -> Array.make depth.(u) None)
  in
  for v = 0 to size - 1 do
    let p = tree.Elimination.parent.(v) in
    if p <> -1 then begin
      let sub = subs.(v) in
      let sub_graph, back = Graph.induced g sub in
      (* the exit vertex: lowest-numbered subtree vertex adjacent to
         the parent (same choice as [Elimination.exit_vertex]) *)
      let exit =
        match List.find_opt (fun x -> Graph.mem_edge g x p) sub with
        | Some x -> x
        | None -> raise Not_found
      in
      let exit_i = ref (-1) in
      Array.iteri (fun i x -> if x = exit then exit_i := i) back;
      let sp = Spanning.bfs sub_graph ~root:!exit_i in
      let slot = depth.(v) - 1 in
      let exit_id = id exit in
      Array.iteri
        (fun i u ->
          let parent_vertex =
            if sp.Spanning.parent.(i) = -1 then u
            else back.(sp.Spanning.parent.(i))
          in
          tree_parts.(u).(slot) <-
            Some
              {
                exit_id;
                dist = sp.Spanning.dist.(i);
                parent_id = id parent_vertex;
              })
        back
    end
  done;
  Array.init size (fun u ->
      List.map
        (fun v ->
          let tree_part =
            if tree.Elimination.parent.(v) = -1 then None
            else tree_parts.(u).(depth.(v) - 1)
          in
          { aid = id v; ann = ann v; tree = tree_part })
        (Elimination.ancestors tree u))

(* ------------------------------------------------------------------ *)
(* Codec                                                                *)
(* ------------------------------------------------------------------ *)

let encode ~id_bits codec entries =
  let w = Bitbuf.Writer.create () in
  let d = List.length entries in
  Bitbuf.Writer.nat w d;
  List.iteri
    (fun i e ->
      Bitbuf.Writer.fixed w ~width:id_bits e.aid;
      codec.write w e.ann;
      (* positional: every entry except the last (the root) has a
         spanning-tree record *)
      match (e.tree, i = d - 1) with
      | Some te, false ->
          Bitbuf.Writer.fixed w ~width:id_bits te.exit_id;
          Bitbuf.Writer.nat w te.dist;
          Bitbuf.Writer.fixed w ~width:id_bits te.parent_id
      | None, true -> ()
      | _ -> invalid_arg "Anclist.encode: tree records misplaced")
    entries;
  Bitbuf.Writer.contents w

let decode ~id_bits codec b =
  Bitbuf.decode b (fun r ->
      let d = Bitbuf.Reader.nat r in
      if d = 0 || d > 4096 then raise (Bitbuf.Decode_error "bad depth");
      List.init d (fun i ->
          let aid = Bitbuf.Reader.fixed r ~width:id_bits in
          let ann = codec.read r in
          let tree =
            if i = d - 1 then None
            else begin
              let exit_id = Bitbuf.Reader.fixed r ~width:id_bits in
              let dist = Bitbuf.Reader.nat r in
              let parent_id = Bitbuf.Reader.fixed r ~width:id_bits in
              Some { exit_id; dist; parent_id }
            end
          in
          { aid; ann; tree }))

let decode_arr ~id_bits codec b =
  match decode ~id_bits codec b with
  | None -> None
  | Some es -> Some (Array.of_list es)

(* ------------------------------------------------------------------ *)
(* Verifier                                                             *)
(* ------------------------------------------------------------------ *)

type 'a analysis = {
  entries : 'a entry list;
  depth : int;
  neighbor_entries : (int * 'a entry list) list;
  children : (int * 'a) list;
}

type 'a analysis_arr = {
  aentries : 'a entry array;
  achildren : (int * 'a) list;
}

(* The verifier over pre-decoded entry arrays.  Every suffix
   comparison in Section 5 — compatibility, subtree membership, the
   exit-touch test, child-subtree claims — is a function of one number
   per neighbor: the length of the longest common suffix (csl) between
   my list and the neighbor's, comparing (id, annotation) pairs.  We
   compute it once per neighbor and the whole check becomes integer
   comparisons:

   - suffix-compatible        <=>  csl = min d dn
   - member of G_{v_j}        <=>  dn >= j  and  csl >= j
   - whole list = (j-1)-suffix <=> dn = j-1 and  csl >= j-1
   - claims a child subtree   <=>  dn > d   and  csl >= d

   (all with j <= d, so csl >= k both implies and is implied by the
   corresponding [pairs_equal] on length-k suffixes).  This replaces
   the quadratic List.nth/suffix walks of the list-based verifier and
   allocates nothing per neighbor beyond the two precomputed arrays. *)
let verify_decoded ~t_bound codec ~me mine ~ids ~decs ~lo ~hi ~proj =
  let ( let* ) = Result.bind in
  let* entries =
    match mine with Some e -> Ok e | None -> Error "malformed certificate"
  in
  let d = Array.length entries in
  (* step 1: depth bound, own id first *)
  let* () = if d <= t_bound then Ok () else Error "depth exceeds bound" in
  let* () =
    if d > 0 && entries.(0).aid = me then Ok ()
    else Error "list does not start with my id"
  in
  let n = hi - lo in
  let nid i = ids.(lo + i) in
  let ne = Array.make n [||] in
  let* () =
    let rec go i =
      if i >= n then Ok ()
      else
        match proj decs.(lo + i) with
        | None -> Error "malformed neighbor certificate"
        | Some es ->
            ne.(i) <- es;
            go (i + 1)
    in
    go 0
  in
  (* neighbors' own ids must head their lists (their own verifier also
     checks it, but we refuse to reason from ill-formed lists) *)
  let* () =
    let rec go i =
      if i >= n then Ok ()
      else
        let es = ne.(i) in
        if Array.length es > 0 && es.(0).aid = nid i then go (i + 1)
        else Error "neighbor list does not start with its id"
    in
    go 0
  in
  let csl = Array.make n 0 in
  for i = 0 to n - 1 do
    let es = ne.(i) in
    let dn = Array.length es in
    let m = if d < dn then d else dn in
    let k = ref 0 in
    let matching = ref true in
    while !matching && !k < m do
      let a = entries.(d - 1 - !k) and b = es.(dn - 1 - !k) in
      if a.aid = b.aid && codec.equal a.ann b.ann then incr k
      else matching := false
    done;
    csl.(i) <- !k
  done;
  (* step 2: suffix compatibility with every neighbor *)
  let* () =
    let rec go i =
      if i >= n then Ok ()
      else
        let dn = Array.length ne.(i) in
        if csl.(i) = (if d < dn then d else dn) then go (i + 1)
        else Error "neighbor list is not suffix-compatible"
    in
    go 0
  in
  (* steps 3-4: per-depth spanning-tree checks; my ancestor at depth j
     is entry (d - j), counting my own entry as depth d. *)
  let* () =
    let member i j = Array.length ne.(i) >= j && csl.(i) >= j in
    let member_record i j =
      let es = ne.(i) in
      es.(Array.length es - j).tree
    in
    let rec per_depth j =
      if j < 2 then Ok ()
      else
        let e = entries.(d - j) in
        match e.tree with
        | None -> Error "missing spanning-tree record"
        | Some te ->
            (* members of G_{v_j} among my neighbors: those whose lists
               share my j-suffix *)
            let* () =
              let rec exits_ok i =
                if i >= n then Ok ()
                else if not (member i j) then exits_ok (i + 1)
                else
                  match member_record i j with
                  | Some r when r.exit_id = te.exit_id -> exits_ok (i + 1)
                  | _ -> Error "exit-vertex ids disagree within a subtree"
              in
              exits_ok 0
            in
            let* () =
              if te.dist = 0 then
                if te.exit_id <> me then
                  Error "claims distance 0 but is not the exit vertex"
                else if te.parent_id <> me then
                  Error "exit vertex must be its own tree parent"
                else begin
                  (* the exit vertex must touch the parent of v_j: a
                     neighbor whose whole list is my (j-1)-suffix *)
                  let rec touches i =
                    i < n
                    && ((Array.length ne.(i) = j - 1 && csl.(i) >= j - 1)
                       || touches (i + 1))
                  in
                  if touches 0 then Ok ()
                  else Error "exit vertex does not touch the parent"
                end
              else
                let rec find i =
                  if i >= n then -1
                  else if member i j && nid i = te.parent_id then i
                  else find (i + 1)
                in
                match find 0 with
                | -1 -> Error "tree parent is not a neighbor in the subtree"
                | i -> (
                    match member_record i j with
                    | Some r when r.dist = te.dist - 1 -> Ok ()
                    | Some _ -> Error "tree parent distance mismatch"
                    | None -> Error "tree parent lacks a record")
            in
            per_depth (j - 1)
    in
    per_depth d
  in
  (* children info: neighbors strictly deeper than me whose list has my
     full list as a proper suffix claim, at their depth-(d+1)-from-end
     entry, the (id, annotation) of my child whose subtree they live
     in. *)
  let* children =
    let tbl = Hashtbl.create 8 in
    let conflict = ref false in
    for i = 0 to n - 1 do
      let es = ne.(i) in
      let dn = Array.length es in
      if dn > d && csl.(i) >= d then begin
        let child_entry = es.(dn - (d + 1)) in
        match Hashtbl.find_opt tbl child_entry.aid with
        | None -> Hashtbl.replace tbl child_entry.aid child_entry.ann
        | Some existing ->
            if not (codec.equal existing child_entry.ann) then conflict := true
      end
    done;
    if !conflict then Error "conflicting claims about a child subtree"
    else
      Ok
        (Hashtbl.fold (fun aid ann acc -> (aid, ann) :: acc) tbl []
        |> List.sort compare)
  in
  Ok { aentries = entries; achildren = children }

let verify ~t_bound codec (view : Scheme.view) =
  let id_bits = view.Scheme.id_bits in
  let mine = decode_arr ~id_bits codec view.Scheme.cert in
  let ids = Array.of_list (List.map fst view.Scheme.nbrs) in
  let decs =
    Array.of_list
      (List.map (fun (_, c) -> decode_arr ~id_bits codec c) view.Scheme.nbrs)
  in
  match
    verify_decoded ~t_bound codec ~me:view.Scheme.me mine ~ids ~decs ~lo:0
      ~hi:(Array.length ids) ~proj:Fun.id
  with
  | Error _ as e -> e
  | Ok a ->
      let entries = Array.to_list a.aentries in
      let neighbor_entries =
        List.init (Array.length ids) (fun i ->
            (ids.(i), Array.to_list (Option.get decs.(i))))
      in
      Ok
        {
          entries;
          depth = Array.length a.aentries;
          neighbor_entries;
          children = a.achildren;
        }
