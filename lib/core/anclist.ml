type tree_entry = { exit_id : int; dist : int; parent_id : int }

type 'a entry = { aid : int; ann : 'a; tree : tree_entry option }

type 'a codec = {
  write : Bitbuf.Writer.t -> 'a -> unit;
  read : Bitbuf.Reader.t -> 'a;
  equal : 'a -> 'a -> bool;
}

let unit_codec =
  { write = (fun _ () -> ()); read = (fun _ -> ()); equal = (fun () () -> true) }

(* ------------------------------------------------------------------ *)
(* Prover                                                               *)
(* ------------------------------------------------------------------ *)

let build (inst : Instance.t) tree ~ann =
  let g = inst.Instance.graph in
  if not (Elimination.is_model tree g) then
    invalid_arg "Anclist.build: not a model";
  if not (Elimination.is_coherent tree g) then
    invalid_arg "Anclist.build: model is not coherent";
  let size = Graph.n g in
  let id v = inst.Instance.ids.(v) in
  let depth = Elimination.depth tree in
  let kids = Elimination.children_all tree in
  (* Subtree vertex lists, sorted ascending (the exit-vertex choice
     below depends on this order), built bottom-up so the whole pass
     is O(Σ|subtree|) = O(n · depth) rather than O(n²). *)
  let subs = Array.make size [] in
  let by_depth = Array.init size Fun.id in
  Array.sort (fun a b -> Int.compare depth.(b) depth.(a)) by_depth;
  Array.iter
    (fun v ->
      subs.(v) <-
        List.sort Int.compare
          (v :: List.concat_map (fun c -> subs.(c)) kids.(v)))
    by_depth;
  (* For each vertex u and each proper-depth slot j: u's record in the
     spanning tree of G_v for its ancestor v at depth j+1.  Filled per
     ancestor v in one sweep over its subtree, so no per-(u, v) lookup
     structure is needed. *)
  let tree_parts =
    Array.init size (fun u -> Array.make depth.(u) None)
  in
  for v = 0 to size - 1 do
    let p = tree.Elimination.parent.(v) in
    if p <> -1 then begin
      let sub = subs.(v) in
      let sub_graph, back = Graph.induced g sub in
      (* the exit vertex: lowest-numbered subtree vertex adjacent to
         the parent (same choice as [Elimination.exit_vertex]) *)
      let exit =
        match List.find_opt (fun x -> Graph.mem_edge g x p) sub with
        | Some x -> x
        | None -> raise Not_found
      in
      let exit_i = ref (-1) in
      Array.iteri (fun i x -> if x = exit then exit_i := i) back;
      let sp = Spanning.bfs sub_graph ~root:!exit_i in
      let slot = depth.(v) - 1 in
      let exit_id = id exit in
      Array.iteri
        (fun i u ->
          let parent_vertex =
            if sp.Spanning.parent.(i) = -1 then u
            else back.(sp.Spanning.parent.(i))
          in
          tree_parts.(u).(slot) <-
            Some
              {
                exit_id;
                dist = sp.Spanning.dist.(i);
                parent_id = id parent_vertex;
              })
        back
    end
  done;
  Array.init size (fun u ->
      List.map
        (fun v ->
          let tree_part =
            if tree.Elimination.parent.(v) = -1 then None
            else tree_parts.(u).(depth.(v) - 1)
          in
          { aid = id v; ann = ann v; tree = tree_part })
        (Elimination.ancestors tree u))

(* ------------------------------------------------------------------ *)
(* Codec                                                                *)
(* ------------------------------------------------------------------ *)

let encode ~id_bits codec entries =
  let w = Bitbuf.Writer.create () in
  let d = List.length entries in
  Bitbuf.Writer.nat w d;
  List.iteri
    (fun i e ->
      Bitbuf.Writer.fixed w ~width:id_bits e.aid;
      codec.write w e.ann;
      (* positional: every entry except the last (the root) has a
         spanning-tree record *)
      match (e.tree, i = d - 1) with
      | Some te, false ->
          Bitbuf.Writer.fixed w ~width:id_bits te.exit_id;
          Bitbuf.Writer.nat w te.dist;
          Bitbuf.Writer.fixed w ~width:id_bits te.parent_id
      | None, true -> ()
      | _ -> invalid_arg "Anclist.encode: tree records misplaced")
    entries;
  Bitbuf.Writer.contents w

let decode ~id_bits codec b =
  Bitbuf.decode b (fun r ->
      let d = Bitbuf.Reader.nat r in
      if d = 0 || d > 4096 then raise (Bitbuf.Decode_error "bad depth");
      List.init d (fun i ->
          let aid = Bitbuf.Reader.fixed r ~width:id_bits in
          let ann = codec.read r in
          let tree =
            if i = d - 1 then None
            else begin
              let exit_id = Bitbuf.Reader.fixed r ~width:id_bits in
              let dist = Bitbuf.Reader.nat r in
              let parent_id = Bitbuf.Reader.fixed r ~width:id_bits in
              Some { exit_id; dist; parent_id }
            end
          in
          { aid; ann; tree }))

(* ------------------------------------------------------------------ *)
(* Verifier                                                             *)
(* ------------------------------------------------------------------ *)

type 'a analysis = {
  entries : 'a entry list;
  depth : int;
  neighbor_entries : (int * 'a entry list) list;
  children : (int * 'a) list;
}

(* [suffix n xs] = last [n] elements of [xs] (which has length >= n). *)
let suffix n xs =
  let len = List.length xs in
  List.filteri (fun i _ -> i >= len - n) xs

let pairs_equal codec a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> x.aid = y.aid && codec.equal x.ann y.ann) a b

let verify ~t_bound codec (view : Scheme.view) =
  let ( let* ) = Result.bind in
  let id_bits = view.Scheme.id_bits in
  let* entries =
    match decode ~id_bits codec view.Scheme.cert with
    | Some e -> Ok e
    | None -> Error "malformed certificate"
  in
  let d = List.length entries in
  (* step 1: depth bound, own id first *)
  let* () = if d <= t_bound then Ok () else Error "depth exceeds bound" in
  let* () =
    match entries with
    | e :: _ when e.aid = view.Scheme.me -> Ok ()
    | _ -> Error "list does not start with my id"
  in
  let* neighbor_entries =
    let rec go = function
      | [] -> Ok []
      | (nid, c) :: rest -> (
          match decode ~id_bits codec c with
          | None -> Error "malformed neighbor certificate"
          | Some es -> Result.map (fun tail -> (nid, es) :: tail) (go rest))
    in
    go view.Scheme.nbrs
  in
  (* neighbors' own ids must head their lists (their own verifier also
     checks it, but we refuse to reason from ill-formed lists) *)
  let* () =
    if
      List.for_all
        (fun (nid, es) -> match es with e :: _ -> e.aid = nid | [] -> false)
        neighbor_entries
    then Ok ()
    else Error "neighbor list does not start with its id"
  in
  (* step 2: suffix compatibility with every neighbor *)
  let* () =
    let compatible (_, es) =
      let dn = List.length es in
      if dn <= d then pairs_equal codec (suffix dn entries) es
      else pairs_equal codec entries (suffix d es)
    in
    if List.for_all compatible neighbor_entries then Ok ()
    else Error "neighbor list is not suffix-compatible"
  in
  (* steps 3-4: per-depth spanning-tree checks; my ancestor at depth j
     is entry (d - j), counting my own entry as depth d. *)
  let entry_at j = List.nth entries (d - j) in
  let* () =
    let rec per_depth j =
      if j < 2 then Ok ()
      else
        let e = entry_at j in
        match e.tree with
        | None -> Error "missing spanning-tree record"
        | Some te ->
            (* members of G_{v_j} among my neighbors: those whose lists
               share my j-suffix *)
            let my_j_suffix = suffix j entries in
            let members =
              List.filter
                (fun (_, es) ->
                  List.length es >= j
                  && pairs_equal codec (suffix j es) my_j_suffix)
                neighbor_entries
            in
            let member_record (_, es) =
              (List.nth es (List.length es - j)).tree
            in
            let* () =
              if
                List.for_all
                  (fun m ->
                    match member_record m with
                    | Some r -> r.exit_id = te.exit_id
                    | None -> false)
                  members
              then Ok ()
              else Error "exit-vertex ids disagree within a subtree"
            in
            let* () =
              if te.dist = 0 then
                if te.exit_id <> view.Scheme.me then
                  Error "claims distance 0 but is not the exit vertex"
                else if te.parent_id <> view.Scheme.me then
                  Error "exit vertex must be its own tree parent"
                else begin
                  (* the exit vertex must touch the parent of v_j: a
                     neighbor whose whole list is my (j-1)-suffix *)
                  let target = suffix (j - 1) entries in
                  if
                    List.exists
                      (fun (_, es) -> pairs_equal codec es target)
                      neighbor_entries
                  then Ok ()
                  else Error "exit vertex does not touch the parent"
                end
              else
                match
                  List.find_opt (fun (nid, _) -> nid = te.parent_id) members
                with
                | None -> Error "tree parent is not a neighbor in the subtree"
                | Some m -> (
                    match member_record m with
                    | Some r when r.dist = te.dist - 1 -> Ok ()
                    | Some _ -> Error "tree parent distance mismatch"
                    | None -> Error "tree parent lacks a record")
            in
            per_depth (j - 1)
    in
    per_depth d
  in
  (* children info: neighbors strictly deeper than me whose list has my
     full list as a proper suffix claim, at their depth-(d+1)-from-end
     entry, the (id, annotation) of my child whose subtree they live
     in. *)
  let* children =
    let claims =
      List.filter_map
        (fun (_, es) ->
          let dn = List.length es in
          if dn > d && pairs_equal codec (suffix d es) entries then begin
            let child_entry = List.nth es (dn - (d + 1)) in
            Some (child_entry.aid, child_entry.ann)
          end
          else None)
        neighbor_entries
    in
    let tbl = Hashtbl.create 8 in
    let conflict = ref false in
    List.iter
      (fun (aid, ann) ->
        match Hashtbl.find_opt tbl aid with
        | None -> Hashtbl.replace tbl aid ann
        | Some existing -> if not (codec.equal existing ann) then conflict := true)
      claims;
    if !conflict then Error "conflicting claims about a child subtree"
    else
      Ok
        (Hashtbl.fold (fun aid ann acc -> (aid, ann) :: acc) tbl []
        |> List.sort compare)
  in
  Ok { entries; depth = d; neighbor_entries; children }
