type ann = { pruned : bool; vtype : Vtype.t; kindex : int; count : int }

(* ------------------------------------------------------------------ *)
(* Codecs                                                               *)
(* ------------------------------------------------------------------ *)

let write_bools w bs =
  Bitbuf.Writer.nat w (List.length bs);
  List.iter (Bitbuf.Writer.bit w) bs

let read_bools r =
  let len = Bitbuf.Reader.nat r in
  if len > 4096 then raise (Bitbuf.Decode_error "ancestor vector too long");
  List.init len (fun _ -> Bitbuf.Reader.bit r)

let rec write_vtype w t =
  Bitbuf.Writer.nat w (Vtype.label t);
  write_bools w (Vtype.anc_vector t);
  Bitbuf.Writer.nat w (List.length (Vtype.children t));
  List.iter
    (fun (c, m) ->
      write_vtype w c;
      Bitbuf.Writer.nat w m)
    (Vtype.children t)

let rec read_vtype depth r =
  if depth > 64 then raise (Bitbuf.Decode_error "type nesting too deep");
  let label = Bitbuf.Reader.nat r in
  let anc = read_bools r in
  let kinds = Bitbuf.Reader.nat r in
  if kinds > 4096 then raise (Bitbuf.Decode_error "too many child types");
  let children =
    List.init kinds (fun _ ->
        let c = read_vtype (depth + 1) r in
        let m = Bitbuf.Reader.nat r in
        if m = 0 then raise (Bitbuf.Decode_error "zero multiplicity");
        (c, m))
  in
  Vtype.make ~label ~anc ~children

let ann_codec : ann Anclist.codec =
  {
    write =
      (fun w a ->
        Bitbuf.Writer.bit w a.pruned;
        write_vtype w a.vtype;
        Bitbuf.Writer.int w a.kindex;
        Bitbuf.Writer.nat w a.count);
    read =
      (fun r ->
        let pruned = Bitbuf.Reader.bit r in
        let vtype = read_vtype 0 r in
        let kindex = Bitbuf.Reader.int r in
        let count = Bitbuf.Reader.nat r in
        if kindex < -1 then raise (Bitbuf.Decode_error "bad kernel index");
        { pruned; vtype; kindex; count })
      ;
    equal =
      (fun a b ->
        a.pruned = b.pruned
        && Vtype.equal a.vtype b.vtype
        && a.kindex = b.kindex && a.count = b.count);
  }

(* Kernel rows: (parent index + 1 — 0 for the root — and ancestor
   adjacency vector, root-first). *)
let encode_rows rows =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.list w
    (fun w (parent, anc, label) ->
      Bitbuf.Writer.nat w (parent + 1);
      write_bools w anc;
      Bitbuf.Writer.nat w label)
    rows;
  Bitbuf.Writer.contents w

let decode_rows b =
  Bitbuf.decode b (fun r ->
      Bitbuf.Reader.list r (fun r ->
          let parent = Bitbuf.Reader.nat r - 1 in
          let anc = read_bools r in
          let label = Bitbuf.Reader.nat r in
          (parent, anc, label)))

(* Rebuild the kernel graph from rows; None if the rows are not a
   well-formed bounded-depth model description. *)
let graph_of_rows rows =
  let size = Array.length rows in
  if size = 0 then None
  else begin
    let ok = ref true in
    (* ancestors root-first, via parent chains with a cycle budget *)
    let anc_chain i =
      let rec go j acc steps =
        if steps > size then begin
          ok := false;
          []
        end
        else
          let p, _, _ = rows.(j) in
          if p = -1 then acc
          else if p < 0 || p >= size then begin
            ok := false;
            []
          end
          else go p (p :: acc) (steps + 1)
      in
      go i [] 0
    in
    let roots = ref 0 in
    let es = ref [] in
    Array.iteri
      (fun i (p, anc, _label) ->
        if p = -1 then incr roots;
        let chain = anc_chain i in
        if List.length anc <> List.length chain then ok := false
        else
          List.iter2
            (fun a adjacent -> if adjacent then es := (i, a) :: !es)
            chain anc)
      rows;
    if (not !ok) || !roots <> 1 then None
    else
      match Graph.of_edges ~n:size !es with
      | g ->
          if Graph.is_connected g then
            Some (g, Array.map (fun (_, _, l) -> l) rows)
          else None
      | exception Invalid_argument _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Prover                                                               *)
(* ------------------------------------------------------------------ *)

let kernel_rows_of_reduction ?labels (red : Reduce.t) =
  let label_of v = match labels with None -> 0 | Some a -> a.(v) in
  let ktree = Reduce.kernel_tree red in
  List.map
    (fun i ->
      let v = red.of_kernel.(i) in
      let ancs_root_first = List.rev (List.tl (Elimination.ancestors red.tree v)) in
      let anc =
        List.map (fun a -> Graph.mem_edge red.graph v a) ancs_root_first
      in
      (ktree.Elimination.parent.(i), anc, label_of v))
    (List.init (Graph.n red.kernel) Fun.id)

(* DFS preorder kernel indices over surviving vertices. *)
let assign_kernel_indices (red : Reduce.t) =
  let size = Graph.n red.graph in
  let kids = Elimination.children_all red.tree in
  let kindex = Array.make size (-1) in
  let counter = ref 0 in
  let rec dfs v =
    if red.alive.(v) then begin
      kindex.(v) <- !counter;
      incr counter;
      (* children_all lists are already ascending *)
      List.iter dfs kids.(v)
    end
  in
  dfs (Elimination.root red.tree);
  kindex

let alive_counts (red : Reduce.t) =
  let size = Graph.n red.graph in
  let counts = Array.make size 0 in
  let kids = Elimination.children_all red.tree in
  let depth = Elimination.depth red.tree in
  let order = List.init size Fun.id in
  let order = List.sort (fun a b -> Int.compare depth.(b) depth.(a)) order in
  List.iter
    (fun v ->
      let own = if red.alive.(v) then 1 else 0 in
      counts.(v) <-
        own + List.fold_left (fun acc w -> acc + counts.(w)) 0 kids.(v))
    order;
  counts

let prover_certs ~k ~t phi (inst : Instance.t) model =
  let g = inst.Instance.graph in
  if not (Graph.is_connected g) then None
  else if not (Elimination.is_model model g) then None
  else
    let model = Elimination.coherentize model g in
    if Elimination.height model > t then None
    else begin
      let labels = inst.Instance.labels in
      let red = Reduce.reduce ~labels g model ~k in
      let kernel_labels = Array.map (fun v -> labels.(v)) red.of_kernel in
      if not (Eval.sentence ~labels:kernel_labels red.kernel phi) then None
      else begin
        (* Re-index kernel rows to DFS preorder so interval checks
           line up: rebuild a reduction-indexed view. *)
        let kindex = assign_kernel_indices red in
        let counts = alive_counts red in
        let size = Graph.n g in
        (* rows in DFS order *)
        let by_index = Array.make (Graph.n red.kernel) (-1) in
        for v = 0 to size - 1 do
          if kindex.(v) >= 0 then by_index.(kindex.(v)) <- v
        done;
        let rows =
          Array.to_list
            (Array.map
               (fun v ->
                 let p = model.Elimination.parent.(v) in
                 let prow = if p = -1 then -1 else kindex.(p) in
                 let ancs_root_first =
                   List.rev (List.tl (Elimination.ancestors model v))
                 in
                 let anc =
                   List.map (fun a -> Graph.mem_edge g v a) ancs_root_first
                 in
                 (prow, anc, labels.(v)))
               by_index)
        in
        let rows_bits = encode_rows rows in
        let ann v =
          {
            pruned = red.pruned.(v);
            vtype = red.end_type.(v);
            kindex = kindex.(v);
            count = counts.(v);
          }
        in
        let entry_lists = Anclist.build inst model ~ann in
        (* Intern the labels: vertices with identical ancestor lists
           (and the shared kernel part) get one allocation. *)
        Some
          (Array.map
             (fun entries ->
               let w = Bitbuf.Writer.create () in
               Bitbuf.Writer.bitstring w
                 (Anclist.encode ~id_bits:inst.Instance.id_bits ann_codec
                    entries);
               Bitbuf.Writer.bitstring w rows_bits;
               Cert_store.intern (Bitbuf.Writer.contents w))
             entry_lists)
      end
    end

(* ------------------------------------------------------------------ *)
(* Verifier                                                             *)
(* ------------------------------------------------------------------ *)

let split_cert c =
  Bitbuf.decode c (fun r ->
      let anclist = Bitbuf.Reader.bitstring r in
      let rows = Bitbuf.Reader.bitstring r in
      (anclist, rows))

(* Decoded certificate: the split halves, the ancestor-entry array, the
   kernel rows, and whether the broadcast kernel satisfies the
   sentence.  Decoding is total — a malformed layer is [None] (resp.
   [sat = false]) and the check stage reports it in the original
   order.  The expensive rows work (decode + rebuild + evaluate) is
   memoized on the rows bitstring: every vertex broadcasts the same
   rows, so it runs once per sweep however many times [decode] is
   called. *)
type dec = {
  parts : (Bitstring.t * Bitstring.t) option;
  danc : ann Anclist.entry array option;
  drows : (int * bool list * int) array option;
  sat : bool;
}

let lowering ~k ~t phi : dec Scheme.lowering =
  (* The memo is shared by every verifier call of this scheme value,
     including calls racing from parallel domains (Engine.run_par), so
     it is a sharded [Memo] keyed by the certificate's own FNV hash —
     polymorphic hashing would leak Bitstring's cached-hash field into
     the key.  The evaluation itself runs unlocked (two domains may
     compute the same entry — they agree, so last-write-wins is
     fine). *)
  let eval_memo : (Bitstring.t, (int * bool list * int) array option * bool)
      Memo.t =
    Memo.create ~name:"kernel_mso.eval" ~hash:Bitstring.hash
      ~equal:Bitstring.equal 8
  in
  let rows_of rows_bits =
    match Memo.find_opt eval_memo rows_bits with
    | Some r -> r
    | None ->
        let drows = Option.map Array.of_list (decode_rows rows_bits) in
        let sat =
          match drows with
          | None -> false
          | Some rows -> (
              match graph_of_rows rows with
              | None -> false
              | Some (kg, klabels) -> (
                  try Eval.sentence ~labels:klabels kg phi
                  with Invalid_argument _ -> false))
        in
        Memo.set eval_memo rows_bits (drows, sat);
        (drows, sat)
  in
  let decode ~id_bits c =
    match split_cert c with
    | None -> { parts = None; danc = None; drows = None; sat = false }
    | Some (anc_bits, rows_bits) ->
        let danc = Anclist.decode_arr ~id_bits ann_codec anc_bits in
        let drows, sat = rows_of rows_bits in
        { parts = Some (anc_bits, rows_bits); danc; drows; sat }
  in
  let check ~id_bits:_ ~me ~label mine ~ids ~decs ~lo ~hi : Scheme.verdict =
    let ( let* ) = Result.bind in
    let result =
      let* mine_rows =
        match mine.parts with
        | Some (_, r) -> Ok r
        | None -> Error "malformed certificate"
      in
      let* () =
        let rec go i =
          if i >= hi then Ok ()
          else
            match decs.(i).parts with
            | None -> Error "malformed neighbor certificate"
            | Some _ -> go (i + 1)
        in
        go lo
      in
      (* broadcast agreement *)
      let* () =
        let rec go i =
          if i >= hi then Ok ()
          else
            match decs.(i).parts with
            | Some (_, r) when Bitstring.equal r mine_rows -> go (i + 1)
            | _ -> Error "kernel descriptions disagree"
        in
        go lo
      in
      let* rows =
        match mine.drows with
        | Some r -> Ok r
        | None -> Error "malformed kernel description"
      in
      (* ancestor-list checks with annotations *)
      let* analysis =
        Anclist.verify_decoded ~t_bound:t ann_codec ~me mine.danc ~ids ~decs
          ~lo ~hi
          ~proj:(fun d -> d.danc)
      in
      let entry_arr = analysis.Anclist.aentries in
      let d = Array.length entry_arr in
      let ann_of (e : ann Anclist.entry) = e.Anclist.ann in
      (* alive(j) = no pruned flag from entry j to the root *)
      let alive = Array.make d false in
      let rec compute_alive j acc =
        (* j indexes entries from self (0) to root (d-1); walk from
           the root down *)
        if j < 0 then ()
        else begin
          let a = acc && not (ann_of entry_arr.(j)).pruned in
          alive.(j) <- a;
          compute_alive (j - 1) a
        end
      in
      compute_alive (d - 1) true;
      (* per-entry sanity: kernel index iff alive; dead subtrees count 0 *)
      let* () =
        let rec check j =
          if j >= d then Ok ()
          else
            let a = ann_of entry_arr.(j) in
            if alive.(j) <> (a.kindex >= 0) then
              Error "kernel index inconsistent with pruned flags"
            else if (not alive.(j)) && a.count <> 0 then
              Error "deleted subtree claims survivors"
            else if alive.(j) && a.count < 1 then
              Error "surviving subtree claims no survivors"
            else check (j + 1)
        in
        check 0
      in
      let my_ann = ann_of entry_arr.(0) in
      let children = analysis.Anclist.achildren in
      (* my true adjacency to my ancestors, root first *)
      let is_neighbor id =
        let rec go i = i < hi && (ids.(i) = id || go (i + 1)) in
        go lo
      in
      let anc_true =
        List.init (d - 1) (fun i ->
            is_neighbor entry_arr.(d - 1 - i).Anclist.aid)
      in
      (* count consistency *)
      let* () =
        let child_sum =
          List.fold_left (fun acc (_, a) -> acc + a.count) 0 children
        in
        let own = if alive.(0) then 1 else 0 in
        if my_ann.count = own + child_sum then Ok ()
        else Error "survivor counts do not add up"
      in
      (* end-type consistency *)
      let* () =
        let surviving = List.filter (fun (_, a) -> not a.pruned) children in
        let grouped =
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun (_, a) ->
              let key = Vtype.id a.vtype in
              Hashtbl.replace tbl key
                (match Hashtbl.find_opt tbl key with
                | Some (t, c) -> (t, c + 1)
                | None -> (a.vtype, 1)))
            surviving;
          Hashtbl.fold (fun _ tc acc -> tc :: acc) tbl []
        in
        let expected = Vtype.make ~label ~anc:anc_true ~children:grouped in
        if Vtype.equal my_ann.vtype expected then Ok ()
        else Error "end type does not match children and adjacency"
      in
      (* pruning validity and maximality (Lemma 6.1) *)
      let* () =
        let surviving_of_type ty =
          List.length
            (List.filter
               (fun (_, a) -> (not a.pruned) && Vtype.equal a.vtype ty)
               children)
        in
        let rec check = function
          | [] -> Ok ()
          | (_, a) :: rest ->
              let s = surviving_of_type a.vtype in
              if a.pruned && s <> k then
                Error "pruned child without exactly k surviving siblings"
              else if (not a.pruned) && s > k then
                Error "more than k surviving children of one type"
              else check rest
        in
        check children
      in
      (* kernel-index interval tiling *)
      let* () =
        if not alive.(0) then Ok ()
        else begin
          let nrows = Array.length rows in
          if my_ann.kindex < 0 || my_ann.kindex >= nrows then
            Error "kernel index out of range"
          else begin
            let alive_children =
              List.filter (fun (_, a) -> a.kindex >= 0) children
              |> List.sort (fun (_, a) (_, b) -> Int.compare a.kindex b.kindex)
            in
            let rec tile start = function
              | [] ->
                  if start = my_ann.kindex + my_ann.count then Ok ()
                  else Error "kernel interval not fully tiled"
              | (_, a) :: rest ->
                  if a.kindex <> start then
                    Error "child kernel interval misplaced"
                  else tile (start + a.count) rest
            in
            let* () = tile (my_ann.kindex + 1) alive_children in
            (* my row *)
            let prow, panc, plabel = rows.(my_ann.kindex) in
            let* () =
              let expected_parent =
                if d = 1 then -1 else (ann_of entry_arr.(1)).kindex
              in
              if prow = expected_parent then Ok ()
              else Error "kernel row parent mismatch"
            in
            let* () =
              if panc = anc_true then Ok ()
              else Error "kernel row adjacency vector mismatch"
            in
            let* () =
              if plabel = label then Ok ()
              else Error "kernel row label mismatch"
            in
            if d = 1 then
              if my_ann.kindex = 0 && my_ann.count = nrows then Ok ()
              else Error "root kernel interval must cover all rows"
            else Ok ()
          end
        end
      in
      (* the kernel satisfies the sentence *)
      if mine.sat then Ok () else Error "kernel does not satisfy the sentence"
    in
    match result with Ok () -> Accept | Error e -> Reject e
  in
  { decode; check; flat = None }

(* ------------------------------------------------------------------ *)
(* Schemes                                                              *)
(* ------------------------------------------------------------------ *)

let default_k phi = max 1 (Formula.quantifier_rank phi)

let make ?(find_model = Treedepth_cert.default_find_model) ?k ~t phi =
  let k = match k with Some k -> k | None -> default_k phi in
  Scheme.of_lowering
    ~name:
      (Printf.sprintf "kernel-mso[%s;t=%d;k=%d]" (Formula.to_string phi) t k)
    ~prover:(fun inst ->
      match find_model inst.Instance.graph with
      | Some model -> prover_certs ~k ~t phi inst model
      | None -> None)
    (lowering ~k ~t phi)

let make_with_model ?k ~t model phi =
  let k = match k with Some k -> k | None -> default_k phi in
  Scheme.of_lowering
    ~name:
      (Printf.sprintf "kernel-mso[%s;t=%d;k=%d;fixed]" (Formula.to_string phi)
         t k)
    ~prover:(fun inst -> prover_certs ~k ~t phi inst model)
    (lowering ~k ~t phi)

type measure = {
  total_bits : int;
  anclist_bits : int;
  kernel_bits : int;
  kernel_vertices : int;
}

let measure ?k ~t model phi inst =
  let k = match k with Some k -> k | None -> default_k phi in
  match prover_certs ~k ~t phi inst model with
  | None -> None
  | Some certs ->
      let total_bits =
        Array.fold_left (fun acc c -> max acc (Bitstring.length c)) 0 certs
      in
      (* recompute the breakdown *)
      let model' = Elimination.coherentize model inst.Instance.graph in
      let red =
        Reduce.reduce ~labels:inst.Instance.labels inst.Instance.graph model' ~k
      in
      let rows_bits =
        encode_rows
          (kernel_rows_of_reduction ~labels:inst.Instance.labels red)
        |> Bitstring.length
      in
      Some
        {
          total_bits;
          anclist_bits = total_bits - rows_bits;
          kernel_bits = rows_bits;
          kernel_vertices = Graph.n red.kernel;
        }
