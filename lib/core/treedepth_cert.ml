let default_find_model g =
  if Graph.n g <= 20 then Some (Exact.optimal_model g)
  else if Graph.is_tree g then Some (Elimination.centroid_of_tree g)
  else Some (Heuristic.model g)

let certs_for (inst : Instance.t) model =
  let model = Elimination.coherentize model inst.Instance.graph in
  Anclist.build inst model ~ann:(fun _ -> ())

(* Decoded certificates are ancestor-entry arrays; the check stage is
   the array verifier of {!Anclist}, shared by the interpreted and
   compiled paths. *)
let lowering ~t : unit Anclist.entry array option Scheme.lowering =
  {
    decode = (fun ~id_bits c -> Anclist.decode_arr ~id_bits Anclist.unit_codec c);
    check =
      (fun ~id_bits:_ ~me ~label:_ mine ~ids ~decs ~lo ~hi ->
        match
          Anclist.verify_decoded ~t_bound:t Anclist.unit_codec ~me mine ~ids
            ~decs ~lo ~hi ~proj:Fun.id
        with
        | Ok _ -> Scheme.Accept
        | Error e -> Scheme.Reject e);
    flat = None;
  }

let make ?(find_model = default_find_model) ~t () =
  Scheme.of_lowering
    ~name:(Printf.sprintf "treedepth<=%d" t)
    ~prover:(fun inst ->
      if not (Graph.is_connected inst.Instance.graph) then None
      else
        match find_model inst.Instance.graph with
        | Some model when Elimination.height model <= t ->
            let entries = certs_for inst model in
            Some
              (Array.map
                 (Anclist.encode ~id_bits:inst.Instance.id_bits
                    Anclist.unit_codec)
                 entries)
        | _ -> None)
    (lowering ~t)

let make_with_model ~t model =
  Scheme.of_lowering
    ~name:(Printf.sprintf "treedepth<=%d[fixed-model]" t)
    ~prover:(fun inst ->
      if
        Graph.is_connected inst.Instance.graph
        && Elimination.is_model model inst.Instance.graph
        && Elimination.height model <= t
      then
        let entries = certs_for inst model in
        Some
          (Array.map
             (Anclist.encode ~id_bits:inst.Instance.id_bits Anclist.unit_codec)
             entries)
      else None)
    (lowering ~t)

let cert_size ~t inst_model inst =
  ignore t;
  let entries = certs_for inst inst_model in
  Array.fold_left
    (fun acc es ->
      max acc
        (Bitstring.length
           (Anclist.encode ~id_bits:inst.Instance.id_bits Anclist.unit_codec es)))
    0 entries
