(** Ancestor-list certificates with per-ancestor annotations — the
    machinery shared by the treedepth certification (Theorem 2.4,
    Section 5) and the certified kernel (Theorem 2.6, Section 6.4).

    Certificate of a vertex [u] at depth [d] of an elimination tree:
    one {!entry} per ancestor of [u] (itself first, root last), where
    the entry for the ancestor [v] at depth [j] carries

    - the identifier of [v],
    - an annotation about [v] of the client's choosing ([unit] for
      plain treedepth; pruned flags / end types / kernel indices for
      the kernel scheme) — annotations travel with the ids, so the
      suffix checks force network-wide agreement on them,
    - for [j ≥ 2], [u]'s position in a spanning tree of [G_v] rooted at
      the exit vertex of [v] (Section 5): the exit's identifier, [u]'s
      distance, and [u]'s parent in that tree.

    The verification implements Section 5's four steps: depth bound and
    id agreement; suffix compatibility of neighbor lists; presence of
    [d−1] spanning-tree records; and per-depth local spanning-tree
    correctness, including that the exit vertex of [v] touches [v]'s
    parent.  {!verify} additionally reports the {e children}
    information used by the kernel scheme: for each child subtree of
    the vertex (all are visible by coherence), the child's claimed
    (id, annotation) — with conflicting claims rejected. *)

type tree_entry = { exit_id : int; dist : int; parent_id : int }

type 'a entry = { aid : int; ann : 'a; tree : tree_entry option }
(** [tree = None] exactly on the root entry (depth 1). *)

type 'a codec = {
  write : Bitbuf.Writer.t -> 'a -> unit;
  read : Bitbuf.Reader.t -> 'a;
  equal : 'a -> 'a -> bool;
}

val unit_codec : unit codec

(** {1 Prover side} *)

val build :
  Instance.t ->
  Elimination.t ->
  ann:(int -> 'a) ->
  'a entry list array
(** Per-vertex entry lists for a {e coherent} model ([ann v] is the
    annotation attached to vertex [v]; it is replicated into the
    certificate of every descendant of [v]).  Raises
    [Invalid_argument] if the model is not coherent (coherence is what
    guarantees exit vertices exist). *)

val encode : id_bits:int -> 'a codec -> 'a entry list -> Bitstring.t
val decode : id_bits:int -> 'a codec -> Bitstring.t -> 'a entry list option

val decode_arr : id_bits:int -> 'a codec -> Bitstring.t -> 'a entry array option
(** {!decode} into an array — the representation the array verifier
    ({!verify_decoded}) and the compiled engine path work on. *)

(** {1 Verifier side} *)

type 'a analysis = {
  entries : 'a entry list;  (** my decoded list, self first *)
  depth : int;  (** its length *)
  neighbor_entries : (int * 'a entry list) list;  (** decoded neighbors *)
  children : (int * 'a) list;
      (** (id, annotation) of each child of mine visible through a
          deeper neighbor, deduplicated; conflicting annotations for
          one id are a verification failure *)
}

val verify :
  t_bound:int ->
  'a codec ->
  Scheme.view ->
  ('a analysis, string) result
(** All Section-5 checks at one vertex; [t_bound] is the certified
    depth bound [t]. *)

type 'a analysis_arr = {
  aentries : 'a entry array;  (** my decoded list, self first *)
  achildren : (int * 'a) list;  (** as {!analysis.children} *)
}
(** What {!verify_decoded} reports — the subset of {!analysis} the
    lowered schemes consume (neighbor lists stay with the caller). *)

val verify_decoded :
  t_bound:int ->
  'a codec ->
  me:int ->
  'a entry array option ->
  ids:int array ->
  decs:'b array ->
  lo:int ->
  hi:int ->
  proj:('b -> 'a entry array option) ->
  ('a analysis_arr, string) result
(** {!verify} over pre-decoded certificates ([None] = malformed), the
    form used by scheme lowerings: the neighbors are the parallel
    slices [ids.(lo..hi-1)]/[decs.(lo..hi-1)], sorted by id as in
    {!Scheme.view} (for the compiled engine these are whole-graph
    CSR rows), and [proj] extracts each neighbor's decoded entry
    array.  All suffix comparisons run on one precomputed
    common-suffix length per neighbor, so the per-vertex work is
    O(Σ min(d, dn)) instead of the list verifier's quadratic walks.
    Verdicts (error strings included) agree with {!verify} exactly —
    {!verify} is implemented on top of this function. *)
