type report = {
  trials : int;
  fooled : Bitstring.t array option;
  near_miss : (int * string) option;
}

let probe scheme inst assignments =
  let trials = ref 0 in
  let fooled = ref None in
  let near_miss = ref None in
  (try
     assignments (fun certs ->
         incr trials;
         let o = Scheme.run ~early_exit:true scheme inst certs in
         if o.Scheme.accepted then begin
           fooled := Some certs;
           raise Exit
         end
         else
           match o.Scheme.rejections with
           | r :: _ -> near_miss := Some r
           | [] -> ())
   with Exit -> ());
  { trials = !trials; fooled = !fooled; near_miss = !near_miss }

let random_assignments rng scheme inst ~trials ~max_bits =
  let size = Instance.n inst in
  probe scheme inst (fun yield ->
      for _ = 1 to trials do
        let certs =
          Array.init size (fun _ -> Rng.bits rng (Rng.int rng (max_bits + 1)))
        in
        yield certs
      done)

let exhaustive scheme inst ~max_bits =
  let size = Instance.n inst in
  (* All bitstrings of length 0..max_bits, as an explicit list. *)
  let universe =
    let rec strings len =
      if len = 0 then [ [] ]
      else
        List.concat_map
          (fun tail -> [ true :: tail; false :: tail ])
          (strings (len - 1))
    in
    List.concat_map
      (fun len -> List.map Bitstring.of_bools (strings len))
      (List.init (max_bits + 1) Fun.id)
  in
  let universe = Array.of_list universe in
  let u = Array.length universe in
  probe scheme inst (fun yield ->
      let choice = Array.make size 0 in
      let rec enumerate v =
        if v = size then
          yield (Array.map (fun i -> universe.(i)) choice)
        else
          for i = 0 to u - 1 do
            choice.(v) <- i;
            enumerate (v + 1)
          done
      in
      enumerate 0)

let corruptions rng scheme inst ~base ~trials =
  let size = Array.length base in
  probe scheme inst (fun yield ->
      for _ = 1 to trials do
        let certs = Array.copy base in
        (match Rng.int rng 3 with
        | 0 ->
            (* flip one bit of one nonempty certificate *)
            let candidates =
              List.filter
                (fun v -> Bitstring.length certs.(v) > 0)
                (List.init size Fun.id)
            in
            if candidates <> [] then begin
              let v = Rng.pick rng candidates in
              let i = Rng.int rng (Bitstring.length certs.(v)) in
              certs.(v) <- Bitstring.flip certs.(v) i
            end
        | 1 ->
            (* swap two vertices' certificates *)
            if size >= 2 then begin
              let a = Rng.int rng size and b = Rng.int rng size in
              let tmp = certs.(a) in
              certs.(a) <- certs.(b);
              certs.(b) <- tmp
            end
        | _ ->
            (* replace one certificate with random bits of same length *)
            let v = Rng.int rng size in
            certs.(v) <- Rng.bits rng (Bitstring.length certs.(v)));
        yield certs
      done)

let transplant scheme ~from_instance ~to_instance =
  if Instance.n from_instance <> Instance.n to_instance then
    invalid_arg "Attack.transplant: vertex counts differ";
  match scheme.Scheme.prover from_instance with
  | None -> { trials = 0; fooled = None; near_miss = None }
  | Some certs -> probe scheme to_instance (fun yield -> yield certs)
