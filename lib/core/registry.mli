(** The scheme registry: one concrete instantiation of every scheme
    family the CLI exposes.

    The CLI's [--scheme] names are parameterized (treedepth bound,
    formula, automaton); this registry pins default parameters so
    that differential tests and benches can quantify "every scheme"
    without re-listing them.  Each entry also carries a generator of
    small random instances suited to the scheme (sizes at which its
    prover is fast), used by the qcheck suites. *)

type entry = {
  name : string;  (** the CLI-facing scheme name *)
  scheme : Scheme.t;
  instance : Localcert_util.Rng.t -> Instance.t;
      (** a small random instance (a mix of yes- and no-instances)
          on which the scheme is meaningful and its prover cheap *)
}

val all : entry list
(** One entry per CLI scheme family: spanning, acyclic, treedepth,
    kernel-mso, existential, universal, path-minor-free,
    tree-mso:perfect-matching, lcl:mis, depth2:dominating. *)

val find : string -> entry option

val summary : unit -> string list
(** One line per registered family — the registry name, plus the
    pinned default scheme's own name when it differs, tagged
    [[compiled]] when the scheme publishes a lowering for the
    ahead-of-time compiled verifier path.  Shown by the CLI's
    [--version] banner. *)
