type entry = {
  name : string;
  scheme : Scheme.t;
  instance : Rng.t -> Instance.t;
}

(* Half the instances keep the friendly v+1 identifiers, half redraw
   from a polynomial range — schemes must not depend on the numbering. *)
let with_ids rng g =
  let i = Instance.make g in
  if Rng.bool rng then Instance.with_random_ids rng i else i

let small_graph ?(max_n = 11) rng =
  let n = 2 + Rng.int rng (max_n - 1) in
  match Rng.int rng 6 with
  | 0 -> Gen.path n
  | 1 -> Gen.cycle (max 3 n)
  | 2 -> Gen.star n
  | 3 -> Gen.random_tree rng n
  | 4 -> Gen.random_connected rng ~n ~extra_edges:(Rng.int rng 4)
  | _ -> Gen.caterpillar ~spine:(1 + Rng.int rng 3) ~legs:(1 + Rng.int rng 2)

let small_tree rng =
  let n = 2 + Rng.int rng 10 in
  match Rng.int rng 4 with
  | 0 -> Gen.path n
  | 1 -> Gen.star n
  | 2 -> Gen.random_tree rng n
  | _ -> Gen.caterpillar ~spine:(1 + Rng.int rng 3) ~legs:(1 + Rng.int rng 2)

let general ?max_n rng = with_ids rng (small_graph ?max_n rng)
let trees rng = with_ids rng (small_tree rng)

let dominating = Parser.parse_exn "exists x. forall y. x = y | x -- y"
let some_edge = Parser.parse_exn "exists x. exists y. x -- y"

let all =
  [
    { name = "spanning"; scheme = Spanning_tree.scheme (); instance = general };
    { name = "acyclic"; scheme = Spanning_tree.acyclicity; instance = general };
    {
      name = "treedepth";
      scheme = Treedepth_cert.make ~t:4 ();
      instance = general;
    };
    {
      name = "kernel-mso";
      scheme = Kernel_mso.make ~t:3 dominating;
      instance = general ~max_n:8;
    };
    {
      name = "existential";
      scheme = Existential_fo.make some_edge;
      instance = general;
    };
    {
      name = "universal";
      scheme = Universal.of_formula dominating;
      instance = general ~max_n:9;
    };
    {
      name = "path-minor-free";
      scheme = Minor_free.path_minor_free ~t:4;
      instance = general;
    };
    {
      name = "tree-mso:perfect-matching";
      scheme =
        Tree_mso.make
          Localcert_automata.Library.has_perfect_matching
            .Localcert_automata.Library.auto;
      instance = trees;
    };
    {
      name = "lcl:mis";
      scheme =
        Lcl.scheme_of_search Lcl.maximal_independent_set ~solve:(fun g ->
            Some (Lcl.greedy_mis g));
      instance = general;
    };
    {
      name = "depth2:dominating";
      scheme = Depth2_fo.has_dominating_vertex;
      instance = general;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

(* One line per family: the registry name, the (possibly
   parameterized) name of the pinned default scheme, and whether it
   publishes a lowering for the compiled engine path. *)
let summary () =
  List.map
    (fun e ->
      let base =
        if e.name = e.scheme.Scheme.name then e.name
        else Printf.sprintf "%s (%s)" e.name e.scheme.Scheme.name
      in
      match e.scheme.Scheme.compiled with
      | Some _ -> base ^ " [compiled]"
      | None -> base)
    all
