type t = {
  graph : Graph.t;
  ids : int array;
  id_bits : int;
  labels : int array;
}

let make ?labels ?ids ?id_bits graph =
  let size = Graph.n graph in
  if size = 0 then invalid_arg "Instance.make: empty graph";
  let ids = match ids with Some a -> Array.copy a | None -> Array.init size (fun v -> v + 1) in
  if Array.length ids <> size then invalid_arg "Instance.make: ids length";
  let seen = Hashtbl.create size in
  Array.iter
    (fun id ->
      if id < 1 then invalid_arg "Instance.make: ids must be >= 1";
      if Hashtbl.mem seen id then invalid_arg "Instance.make: duplicate id";
      Hashtbl.replace seen id ())
    ids;
  let labels =
    match labels with
    | Some a ->
        if Array.length a <> size then invalid_arg "Instance.make: labels length";
        Array.copy a
    | None -> Array.make size 0
  in
  let max_id = Array.fold_left max 1 ids in
  let needed = Combin.ceil_log2 (max_id + 1) in
  let id_bits =
    match id_bits with
    | None -> needed
    | Some b when b >= needed -> b
    | Some b ->
        invalid_arg
          (Printf.sprintf "Instance.make: id_bits %d cannot encode id %d" b
             max_id)
  in
  { graph; ids; id_bits; labels }

let with_random_ids ?(range_exp = 2) rng t =
  let size = Graph.n t.graph in
  let bound = max (size + 1) (Combin.pow size range_exp) in
  let seen = Hashtbl.create size in
  let ids =
    Array.init size (fun _ ->
        let rec draw () =
          let id = 1 + Rng.int rng bound in
          if Hashtbl.mem seen id then draw ()
          else begin
            Hashtbl.replace seen id ();
            id
          end
        in
        draw ())
  in
  make ~labels:t.labels ~ids t.graph

let vertex_of_id t id =
  let found = ref None in
  Array.iteri (fun v i -> if i = id then found := Some v) t.ids;
  !found

let id_of t v = t.ids.(v)

let n t = Graph.n t.graph

let neighbor_ids t v =
  Array.to_list (Graph.neighbors t.graph v)
  |> List.map (fun w -> t.ids.(w))
  |> List.sort Int.compare
