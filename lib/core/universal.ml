(* The description is the list of (id, sorted neighbor ids) rows,
   sorted by id — a canonical encoding so that equality of descriptions
   is equality of bitstrings. *)

let describe (inst : Instance.t) =
  List.map
    (fun v -> (Instance.id_of inst v, Instance.neighbor_ids inst v))
    (Graph.vertices inst.graph)
  |> List.sort compare

let encode ~id_bits rows =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.list w
    (fun w (id, nbrs) ->
      Bitbuf.Writer.fixed w ~width:id_bits id;
      Bitbuf.Writer.list w (fun w n -> Bitbuf.Writer.fixed w ~width:id_bits n) nbrs)
    rows;
  Bitbuf.Writer.contents w

let decode ~id_bits b =
  Bitbuf.decode b (fun r ->
      Bitbuf.Reader.list r (fun r ->
          let id = Bitbuf.Reader.fixed r ~width:id_bits in
          let nbrs =
            Bitbuf.Reader.list r (fun r -> Bitbuf.Reader.fixed r ~width:id_bits)
          in
          (id, nbrs)))

(* Rebuild a graph from a description; vertex numbering by row order. *)
let graph_of_rows rows =
  let ids = List.map fst rows in
  let index = Hashtbl.create (List.length rows) in
  List.iteri (fun i id -> Hashtbl.replace index id i) ids;
  if Hashtbl.length index <> List.length rows then None
  else
    let ok = ref true in
    let es = ref [] in
    List.iter
      (fun (id, nbrs) ->
        let u = Hashtbl.find index id in
        List.iter
          (fun nid ->
            match Hashtbl.find_opt index nid with
            | Some v when v <> u -> es := (u, v) :: !es
            | _ -> ok := false)
          nbrs)
      rows;
    (* symmetry: every directed mention must have its converse *)
    let mentioned = Hashtbl.create 64 in
    List.iter (fun (u, v) -> Hashtbl.replace mentioned (u, v) ()) !es;
    if List.exists (fun (u, v) -> not (Hashtbl.mem mentioned (v, u))) !es then
      ok := false;
    if !ok then Some (Graph.of_edges ~n:(List.length rows) !es) else None

let make ~name p =
  let verifier (view : Scheme.view) : Scheme.verdict =
    let id_bits = view.id_bits in
    match decode ~id_bits view.cert with
    | None -> Reject "malformed description"
    | Some rows -> (
        if List.exists (fun (_, c) -> not (Bitstring.equal c view.cert)) view.nbrs
        then Reject "neighbors carry a different description"
        else
          let my_row = List.assoc_opt view.me rows in
          let true_nbrs = List.sort Int.compare (List.map fst view.nbrs) in
          match my_row with
          | None -> Reject "description misses my row"
          | Some claimed when claimed <> true_nbrs ->
              Reject "description misstates my neighborhood"
          | Some _ -> (
              match graph_of_rows rows with
              | None -> Reject "description is not a valid graph"
              | Some g ->
                  if not (Graph.is_connected g) then
                    Reject "described graph is disconnected"
                  else if p g then Accept
                  else Reject "described graph fails the property"))
  in
  {
    Scheme.name = "universal[" ^ name ^ "]";
    prover =
      (fun inst ->
        if Graph.is_connected inst.graph && p inst.graph then begin
          let c = encode ~id_bits:inst.id_bits (describe inst) in
          Some (Array.make (Instance.n inst) c)
        end
        else None);
    verifier;
    compiled = None;
  }

let of_formula phi = make ~name:(Formula.to_string phi) (fun g -> Eval.sentence g phi)

let cert_size inst =
  Bitstring.length (encode ~id_bits:inst.Instance.id_bits (describe inst))
