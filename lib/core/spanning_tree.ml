type cert = { root_id : int; dist : int; parent_id : int }

let encode ~id_bits c =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.fixed w ~width:id_bits c.root_id;
  Bitbuf.Writer.nat w c.dist;
  Bitbuf.Writer.fixed w ~width:id_bits c.parent_id;
  Bitbuf.Writer.contents w

let decode ~id_bits b =
  Bitbuf.decode b (fun r ->
      let root_id = Bitbuf.Reader.fixed r ~width:id_bits in
      let dist = Bitbuf.Reader.nat r in
      let parent_id = Bitbuf.Reader.fixed r ~width:id_bits in
      { root_id; dist; parent_id })

(* Build certificates from a BFS spanning tree. *)
let tree_certs (inst : Instance.t) root =
  let sp = Spanning.bfs inst.graph ~root in
  Array.init (Instance.n inst) (fun v ->
      {
        root_id = inst.ids.(root);
        dist = sp.dist.(v);
        parent_id =
          (if v = root then inst.ids.(root) else inst.ids.(sp.parent.(v)));
      })

(* ------------------------------------------------------------------ *)
(* Lowered checkers.  Decoding is total (malformed = None); the check
   stage runs on pre-decoded certificates and is shared verbatim by
   the interpreted verifier and the compiled engine path, so the two
   agree on every verdict by construction.                            *)

(* Check stages take the neighbors as parallel [ids]/[decs] slices
   ([lo, hi)) — the compiled engine passes whole-graph CSR rows here,
   so the loops below index shared flat arrays and allocate nothing. *)

(* [proj] extracts the embedded tree certificate from a decoded (and
   known well-formed) neighbor value. *)
let check_tree_arr ~me c ~ids ~decs ~lo ~hi ~proj =
  let nth i = proj decs.(i) in
  let rec roots_ok i =
    i >= hi || ((nth i).root_id = c.root_id && roots_ok (i + 1))
  in
  if not (roots_ok lo) then Error "root ids disagree"
  else if c.dist = 0 then
    if c.root_id <> me then Error "distance 0 but not the claimed root"
    else if c.parent_id <> me then Error "root must be its own parent"
    else Ok ()
  else if c.root_id = me then Error "claimed root has nonzero distance"
  else begin
    let rec find i =
      if i >= hi then -1 else if ids.(i) = c.parent_id then i else find (i + 1)
    in
    match find lo with
    | -1 -> Error "parent is not a neighbor"
    | i ->
        if (nth i).dist = c.dist - 1 then Ok ()
        else Error "parent distance is not mine minus one"
  end

let opt_cert = function Some c -> c | None -> assert false

let check_tree_view ~me c ~neighbors =
  let ids = Array.of_list (List.map fst neighbors) in
  let decs = Array.of_list (List.map snd neighbors) in
  check_tree_arr ~me c ~ids ~decs ~lo:0 ~hi:(Array.length ids) ~proj:Fun.id

(* The compiled sweeps below are single-pass: at 10⁶+ vertices each
   [decs.(i)] dereference is a likely cache miss (decoded records live
   in vertex order, rows of a non-path graph reference them in random
   order), so the row is walked once, gathering every sub-check's
   flag, and the verdict is decided afterwards in the multi-pass
   checkers' priority order.  Each sub-check is a forall/exists over
   the whole row, so gathering commutes — verdicts (error strings
   included) are identical to the layered versions. *)

let tree_check ~me mine ~ids ~decs ~lo ~hi : Scheme.verdict =
  match mine with
  | None -> Reject "malformed certificate"
  | Some c ->
      let malformed = ref false in
      let roots_ok = ref true in
      let parent_idx = ref (-1) in
      let i = ref lo in
      while (not !malformed) && !i < hi do
        (match decs.(!i) with
        | None -> malformed := true
        | Some nc ->
            if nc.root_id <> c.root_id then roots_ok := false;
            if ids.(!i) = c.parent_id then parent_idx := !i);
        incr i
      done;
      if !malformed then Reject "malformed neighbor certificate"
      else if not !roots_ok then Reject "root ids disagree"
      else if c.dist = 0 then
        if c.root_id <> me then Reject "distance 0 but not the claimed root"
        else if c.parent_id <> me then Reject "root must be its own parent"
        else Accept
      else if c.root_id = me then Reject "claimed root has nonzero distance"
      else if !parent_idx < 0 then Reject "parent is not a neighbor"
      else if (opt_cert decs.(!parent_idx)).dist = c.dist - 1 then Accept
      else Reject "parent distance is not mine minus one"

(* Struct-of-arrays planes for the compiled engine (Scheme.flat): a
   decoded [cert option] flattens to [valid; root_id; dist; parent_id]
   and the flat checks below repeat the fused sweeps on plane slots
   instead of boxed records — same gathering, same verdict cascade,
   same reason strings. *)

let tree_width = 4

let tree_write d plane base =
  match d with
  | None -> plane.(base) <- 0
  | Some c ->
      plane.(base) <- 1;
      plane.(base + 1) <- c.root_id;
      plane.(base + 2) <- c.dist;
      plane.(base + 3) <- c.parent_id

let tree_check_flat ~me ~mine ~mbase ~ids ~plane ~lo ~hi : Scheme.verdict =
  if Array.unsafe_get mine mbase = 0 then Reject "malformed certificate"
  else begin
    let m_root = Array.unsafe_get mine (mbase + 1) in
    let m_dist = Array.unsafe_get mine (mbase + 2) in
    let m_parent = Array.unsafe_get mine (mbase + 3) in
    let malformed = ref false in
    let roots_ok = ref true in
    let parent_dist = ref min_int in
    let i = ref lo in
    while (not !malformed) && !i < hi do
      let b = !i * tree_width in
      if Array.unsafe_get plane b = 0 then malformed := true
      else begin
        if Array.unsafe_get plane (b + 1) <> m_root then roots_ok := false;
        if Array.unsafe_get ids !i = m_parent then
          parent_dist := Array.unsafe_get plane (b + 2)
      end;
      incr i
    done;
    if !malformed then Reject "malformed neighbor certificate"
    else if not !roots_ok then Reject "root ids disagree"
    else if m_dist = 0 then
      if m_root <> me then Reject "distance 0 but not the claimed root"
      else if m_parent <> me then Reject "root must be its own parent"
      else Accept
    else if m_root = me then Reject "claimed root has nonzero distance"
    else if !parent_dist = min_int then Reject "parent is not a neighbor"
    else if !parent_dist = m_dist - 1 then Accept
    else Reject "parent distance is not mine minus one"
  end

let tree_flat : cert option Scheme.flat =
  {
    width = tree_width;
    write = tree_write;
    check_flat =
      (fun ~id_bits:_ ~me ~label:_ ~mine ~mbase ~ids ~plane ~lo ~hi ->
        tree_check_flat ~me ~mine ~mbase ~ids ~plane ~lo ~hi);
  }

let tree_lowering : cert option Scheme.lowering =
  {
    decode = (fun ~id_bits c -> decode ~id_bits c);
    check =
      (fun ~id_bits:_ ~me ~label:_ mine ~ids ~decs ~lo ~hi ->
        tree_check ~me mine ~ids ~decs ~lo ~hi);
    flat = Some tree_flat;
  }

let scheme ?(root = 0) () =
  Scheme.of_lowering ~name:"spanning-tree"
    ~prover:(fun inst ->
      if Graph.is_connected inst.Instance.graph then
        Some
          (Array.map
             (encode ~id_bits:inst.Instance.id_bits)
             (tree_certs inst root))
      else None)
    tree_lowering

let acyclicity_check ~me mine ~ids ~decs ~lo ~hi : Scheme.verdict =
  match mine with
  | None -> Reject "malformed certificate"
  | Some c ->
      let malformed = ref false in
      let roots_ok = ref true in
      let parent_idx = ref (-1) in
      (* every edge must be a tree edge: each neighbor is my parent
         (dist-1, and I claim it) or my child (dist+1, and it claims
         me) *)
      let all_tree = ref true in
      let i = ref lo in
      while (not !malformed) && !i < hi do
        (match decs.(!i) with
        | None -> malformed := true
        | Some nc ->
            if nc.root_id <> c.root_id then roots_ok := false;
            if ids.(!i) = c.parent_id then parent_idx := !i;
            let is_parent = nc.dist = c.dist - 1 && c.parent_id = ids.(!i) in
            let is_child = nc.dist = c.dist + 1 && nc.parent_id = me in
            if not (is_parent || is_child) then all_tree := false);
        incr i
      done;
      if !malformed then Reject "malformed neighbor certificate"
      else if not !roots_ok then Reject "root ids disagree"
      else if c.dist = 0 then
        if c.root_id <> me then Reject "distance 0 but not the claimed root"
        else if c.parent_id <> me then Reject "root must be its own parent"
        else if !all_tree then Accept
        else Reject "non-tree edge detected"
      else if c.root_id = me then Reject "claimed root has nonzero distance"
      else if !parent_idx < 0 then Reject "parent is not a neighbor"
      else if (opt_cert decs.(!parent_idx)).dist <> c.dist - 1 then
        Reject "parent distance is not mine minus one"
      else if !all_tree then Accept
      else Reject "non-tree edge detected"

let acyclicity_check_flat ~me ~mine ~mbase ~ids ~plane ~lo ~hi :
    Scheme.verdict =
  if Array.unsafe_get mine mbase = 0 then Reject "malformed certificate"
  else begin
    let m_root = Array.unsafe_get mine (mbase + 1) in
    let m_dist = Array.unsafe_get mine (mbase + 2) in
    let m_parent = Array.unsafe_get mine (mbase + 3) in
    let malformed = ref false in
    let roots_ok = ref true in
    let parent_dist = ref min_int in
    let all_tree = ref true in
    let i = ref lo in
    while (not !malformed) && !i < hi do
      let b = !i * tree_width in
      if Array.unsafe_get plane b = 0 then malformed := true
      else begin
        let nd = Array.unsafe_get plane (b + 2) in
        let nid = Array.unsafe_get ids !i in
        if Array.unsafe_get plane (b + 1) <> m_root then roots_ok := false;
        if nid = m_parent then parent_dist := nd;
        let is_parent = nd = m_dist - 1 && m_parent = nid in
        let is_child = nd = m_dist + 1 && Array.unsafe_get plane (b + 3) = me in
        if not (is_parent || is_child) then all_tree := false
      end;
      incr i
    done;
    if !malformed then Reject "malformed neighbor certificate"
    else if not !roots_ok then Reject "root ids disagree"
    else if m_dist = 0 then
      if m_root <> me then Reject "distance 0 but not the claimed root"
      else if m_parent <> me then Reject "root must be its own parent"
      else if !all_tree then Accept
      else Reject "non-tree edge detected"
    else if m_root = me then Reject "claimed root has nonzero distance"
    else if !parent_dist = min_int then Reject "parent is not a neighbor"
    else if !parent_dist <> m_dist - 1 then
      Reject "parent distance is not mine minus one"
    else if !all_tree then Accept
    else Reject "non-tree edge detected"
  end

let acyclicity =
  Scheme.of_lowering ~name:"acyclicity"
    ~prover:(fun inst ->
      if Graph.is_tree inst.Instance.graph then
        Some
          (Array.map (encode ~id_bits:inst.Instance.id_bits) (tree_certs inst 0))
      else None)
    {
      Scheme.decode = (fun ~id_bits c -> decode ~id_bits c);
      check =
        (fun ~id_bits:_ ~me ~label:_ mine ~ids ~decs ~lo ~hi ->
          acyclicity_check ~me mine ~ids ~decs ~lo ~hi);
      flat =
        Some
          {
            Scheme.width = tree_width;
            write = tree_write;
            check_flat =
              (fun ~id_bits:_ ~me ~label:_ ~mine ~mbase ~ids ~plane ~lo ~hi ->
                acyclicity_check_flat ~me ~mine ~mbase ~ids ~plane ~lo ~hi);
          };
    }

(* Vertex count: spanning-tree certificate extended with the subtree
   size and the claimed global total.  The record is flat — no nested
   tree certificate — so the one dereference the fused sweep below
   performs per neighbor pulls every field into cache together. *)
type count_cert = {
  c_root_id : int;
  c_dist : int;
  c_parent_id : int;
  size : int;
  total : int;
}

let encode_count ~id_bits c =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.fixed w ~width:id_bits c.c_root_id;
  Bitbuf.Writer.nat w c.c_dist;
  Bitbuf.Writer.fixed w ~width:id_bits c.c_parent_id;
  Bitbuf.Writer.nat w c.size;
  Bitbuf.Writer.nat w c.total;
  Bitbuf.Writer.contents w

let decode_count ~id_bits b =
  Bitbuf.decode b (fun r ->
      let c_root_id = Bitbuf.Reader.fixed r ~width:id_bits in
      let c_dist = Bitbuf.Reader.nat r in
      let c_parent_id = Bitbuf.Reader.fixed r ~width:id_bits in
      let size = Bitbuf.Reader.nat r in
      let total = Bitbuf.Reader.nat r in
      { c_root_id; c_dist; c_parent_id; size; total })

let count_certs (inst : Instance.t) root =
  let sp = Spanning.bfs inst.graph ~root in
  let sizes = Spanning.subtree_sizes sp in
  let base = tree_certs inst root in
  Array.init (Instance.n inst) (fun v ->
      let t = base.(v) in
      {
        c_root_id = t.root_id;
        c_dist = t.dist;
        c_parent_id = t.parent_id;
        size = sizes.(v);
        total = Instance.n inst;
      })

let count_check ~total_pred ~local ~root_check ~me mine ~ids ~decs ~lo ~hi :
    Scheme.verdict =
  match mine with
  | None -> Reject "malformed certificate"
  | Some mine ->
      let n = hi - lo in
      let malformed = ref false in
      let roots_ok = ref true and totals_ok = ref true in
      let parent_idx = ref (-1) in
      let children_sum = ref 0 in
      let i = ref lo in
      while (not !malformed) && !i < hi do
        (match decs.(!i) with
        | None -> malformed := true
        | Some c ->
            if c.c_root_id <> mine.c_root_id then roots_ok := false;
            if c.total <> mine.total then totals_ok := false;
            if ids.(!i) = mine.c_parent_id then parent_idx := !i;
            if c.c_parent_id = me && c.c_dist = mine.c_dist + 1 then
              children_sum := !children_sum + c.size);
        incr i
      done;
      if !malformed then Reject "malformed neighbor certificate"
      else if not !roots_ok then Reject "root ids disagree"
      else if
        (* the spanning-tree core, on the flat fields *)
        mine.c_dist = 0 && mine.c_root_id <> me
      then Reject "distance 0 but not the claimed root"
      else if mine.c_dist = 0 && mine.c_parent_id <> me then
        Reject "root must be its own parent"
      else if mine.c_dist > 0 && mine.c_root_id = me then
        Reject "claimed root has nonzero distance"
      else if mine.c_dist > 0 && !parent_idx < 0 then
        Reject "parent is not a neighbor"
      else if
        mine.c_dist > 0
        && (match decs.(!parent_idx) with
           | Some p -> p.c_dist <> mine.c_dist - 1
           | None -> assert false)
      then Reject "parent distance is not mine minus one"
      else if not !totals_ok then Reject "totals disagree"
      else if mine.size <> !children_sum + 1 then
        Reject "subtree size does not match children"
      else if mine.c_dist = 0 && mine.size <> mine.total then
        Reject "root size differs from claimed total"
      else if mine.c_dist = 0 && not (total_pred mine.total) then
        Reject "total fails the predicate"
      else if not (local ~total:mine.total ~me ~degree:n) then
        Reject "local degree check failed"
      else if mine.c_dist = 0 && not (root_check ~total:mine.total ~degree:n)
      then Reject "root check failed"
      else Accept

(* Flat plane for count certificates:
   [valid; root_id; dist; parent_id; size; total]. *)
let count_width = 6

let count_write d plane base =
  match d with
  | None -> plane.(base) <- 0
  | Some c ->
      plane.(base) <- 1;
      plane.(base + 1) <- c.c_root_id;
      plane.(base + 2) <- c.c_dist;
      plane.(base + 3) <- c.c_parent_id;
      plane.(base + 4) <- c.size;
      plane.(base + 5) <- c.total

let count_check_flat ~total_pred ~local ~root_check ~me ~mine ~mbase ~ids
    ~plane ~lo ~hi : Scheme.verdict =
  if Array.unsafe_get mine mbase = 0 then Reject "malformed certificate"
  else begin
    let m_root = Array.unsafe_get mine (mbase + 1) in
    let m_dist = Array.unsafe_get mine (mbase + 2) in
    let m_parent = Array.unsafe_get mine (mbase + 3) in
    let m_size = Array.unsafe_get mine (mbase + 4) in
    let m_total = Array.unsafe_get mine (mbase + 5) in
    let n = hi - lo in
    let malformed = ref false in
    let roots_ok = ref true and totals_ok = ref true in
    let parent_dist = ref min_int in
    let children_sum = ref 0 in
    let i = ref lo in
    while (not !malformed) && !i < hi do
      let b = !i * count_width in
      if Array.unsafe_get plane b = 0 then malformed := true
      else begin
        let nd = Array.unsafe_get plane (b + 2) in
        if Array.unsafe_get plane (b + 1) <> m_root then roots_ok := false;
        if Array.unsafe_get plane (b + 5) <> m_total then totals_ok := false;
        if Array.unsafe_get ids !i = m_parent then parent_dist := nd;
        if Array.unsafe_get plane (b + 3) = me && nd = m_dist + 1 then
          children_sum := !children_sum + Array.unsafe_get plane (b + 4)
      end;
      incr i
    done;
    if !malformed then Reject "malformed neighbor certificate"
    else if not !roots_ok then Reject "root ids disagree"
    else if m_dist = 0 && m_root <> me then
      Reject "distance 0 but not the claimed root"
    else if m_dist = 0 && m_parent <> me then
      Reject "root must be its own parent"
    else if m_dist > 0 && m_root = me then
      Reject "claimed root has nonzero distance"
    else if m_dist > 0 && !parent_dist = min_int then
      Reject "parent is not a neighbor"
    else if m_dist > 0 && !parent_dist <> m_dist - 1 then
      Reject "parent distance is not mine minus one"
    else if not !totals_ok then Reject "totals disagree"
    else if m_size <> !children_sum + 1 then
      Reject "subtree size does not match children"
    else if m_dist = 0 && m_size <> m_total then
      Reject "root size differs from claimed total"
    else if m_dist = 0 && not (total_pred m_total) then
      Reject "total fails the predicate"
    else if not (local ~total:m_total ~me ~degree:n) then
      Reject "local degree check failed"
    else if m_dist = 0 && not (root_check ~total:m_total ~degree:n) then
      Reject "root check failed"
    else Accept
  end

let count_lowering ~total_pred ~local ~root_check :
    count_cert option Scheme.lowering =
  {
    decode = (fun ~id_bits c -> decode_count ~id_bits c);
    check =
      (fun ~id_bits:_ ~me ~label:_ mine ~ids ~decs ~lo ~hi ->
        count_check ~total_pred ~local ~root_check ~me mine ~ids ~decs ~lo ~hi);
    flat =
      Some
        {
          Scheme.width = count_width;
          write = count_write;
          check_flat =
            (fun ~id_bits:_ ~me ~label:_ ~mine ~mbase ~ids ~plane ~lo ~hi ->
              count_check_flat ~total_pred ~local ~root_check ~me ~mine ~mbase
                ~ids ~plane ~lo ~hi);
        };
  }

let always_local ~total:_ ~me:_ ~degree:_ = true
let always_root ~total:_ ~degree:_ = true

let vertex_count ?(root = 0) ~expected pred_name =
  Scheme.of_lowering
    ~name:(Printf.sprintf "vertex-count[%s]" pred_name)
    ~prover:(fun inst ->
      if Graph.is_connected inst.Instance.graph && expected (Instance.n inst)
      then
        Some
          (Array.map
             (encode_count ~id_bits:inst.Instance.id_bits)
             (count_certs inst root))
      else None)
    (count_lowering ~total_pred:expected ~local:always_local
       ~root_check:always_root)

let counted ?(choose_root = fun _ -> Some 0) ~name ~total_pred ~local
    ~root_check () =
  Scheme.of_lowering ~name
    ~prover:(fun inst ->
      let g = inst.Instance.graph in
      if not (Graph.is_connected g) then None
      else
        match choose_root g with
        | None -> None
        | Some root ->
            let n = Instance.n inst in
            let ok =
              total_pred n
              && Graph.fold_vertices
                   (fun v acc ->
                     acc
                     && local ~total:n ~me:inst.Instance.ids.(v)
                          ~degree:(Graph.degree g v))
                   g true
              && root_check ~total:n ~degree:(Graph.degree g root)
            in
            if ok then
              Some
                (Array.map
                   (encode_count ~id_bits:inst.Instance.id_bits)
                   (count_certs inst root))
            else None)
    (count_lowering ~total_pred ~local ~root_check)

let count_cert_size inst =
  let certs = count_certs inst 0 in
  Array.fold_left
    (fun acc c ->
      max acc (Bitstring.length (encode_count ~id_bits:inst.Instance.id_bits c)))
    0 certs
