type cert = { root_id : int; dist : int; parent_id : int }

let encode ~id_bits c =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.fixed w ~width:id_bits c.root_id;
  Bitbuf.Writer.nat w c.dist;
  Bitbuf.Writer.fixed w ~width:id_bits c.parent_id;
  Bitbuf.Writer.contents w

let decode ~id_bits b =
  Bitbuf.decode b (fun r ->
      let root_id = Bitbuf.Reader.fixed r ~width:id_bits in
      let dist = Bitbuf.Reader.nat r in
      let parent_id = Bitbuf.Reader.fixed r ~width:id_bits in
      { root_id; dist; parent_id })

(* Build certificates from a BFS spanning tree. *)
let tree_certs (inst : Instance.t) root =
  let sp = Spanning.bfs inst.graph ~root in
  Array.init (Instance.n inst) (fun v ->
      {
        root_id = inst.ids.(root);
        dist = sp.dist.(v);
        parent_id =
          (if v = root then inst.ids.(root) else inst.ids.(sp.parent.(v)));
      })

(* ------------------------------------------------------------------ *)
(* Lowered checkers.  Decoding is total (malformed = None); the check
   stage runs on pre-decoded certificates and is shared verbatim by
   the interpreted verifier and the compiled engine path, so the two
   agree on every verdict by construction.                            *)

let any_malformed nbrs =
  let n = Array.length nbrs in
  let rec go i =
    if i >= n then false
    else match snd nbrs.(i) with None -> true | Some _ -> go (i + 1)
  in
  go 0

(* [proj] extracts the embedded tree certificate from a decoded (and
   known well-formed) neighbor value. *)
let check_tree_arr ~me c nbrs ~proj =
  let n = Array.length nbrs in
  let nth i = proj (snd nbrs.(i)) in
  let rec roots_ok i =
    i >= n || ((nth i).root_id = c.root_id && roots_ok (i + 1))
  in
  if not (roots_ok 0) then Error "root ids disagree"
  else if c.dist = 0 then
    if c.root_id <> me then Error "distance 0 but not the claimed root"
    else if c.parent_id <> me then Error "root must be its own parent"
    else Ok ()
  else if c.root_id = me then Error "claimed root has nonzero distance"
  else begin
    let rec find i =
      if i >= n then -1
      else if fst nbrs.(i) = c.parent_id then i
      else find (i + 1)
    in
    match find 0 with
    | -1 -> Error "parent is not a neighbor"
    | i ->
        if (nth i).dist = c.dist - 1 then Ok ()
        else Error "parent distance is not mine minus one"
  end

let opt_cert = function Some c -> c | None -> assert false

let check_tree_view ~me c ~neighbors =
  check_tree_arr ~me c (Array.of_list neighbors) ~proj:Fun.id

let tree_check ~me mine nbrs : Scheme.verdict =
  match mine with
  | None -> Reject "malformed certificate"
  | Some c ->
      if any_malformed nbrs then Reject "malformed neighbor certificate"
      else (
        match check_tree_arr ~me c nbrs ~proj:opt_cert with
        | Ok () -> Accept
        | Error e -> Reject e)

let tree_lowering : cert option Scheme.lowering =
  {
    decode = (fun ~id_bits c -> decode ~id_bits c);
    check = (fun ~id_bits:_ ~me ~label:_ mine nbrs -> tree_check ~me mine nbrs);
  }

let scheme ?(root = 0) () =
  Scheme.of_lowering ~name:"spanning-tree"
    ~prover:(fun inst ->
      if Graph.is_connected inst.Instance.graph then
        Some
          (Array.map
             (encode ~id_bits:inst.Instance.id_bits)
             (tree_certs inst root))
      else None)
    tree_lowering

let acyclicity_check ~me mine nbrs : Scheme.verdict =
  match mine with
  | None -> Reject "malformed certificate"
  | Some c ->
      if any_malformed nbrs then Reject "malformed neighbor certificate"
      else (
        match check_tree_arr ~me c nbrs ~proj:opt_cert with
        | Error e -> Reject e
        | Ok () ->
            (* every edge must be a tree edge: each neighbor is my
               parent (dist-1, and I claim it) or my child (dist+1,
               and it claims me) *)
            let n = Array.length nbrs in
            let rec all_tree i =
              if i >= n then true
              else
                let nid = fst nbrs.(i) in
                let nc = opt_cert (snd nbrs.(i)) in
                let is_parent = nc.dist = c.dist - 1 && c.parent_id = nid in
                let is_child = nc.dist = c.dist + 1 && nc.parent_id = me in
                (is_parent || is_child) && all_tree (i + 1)
            in
            if all_tree 0 then Accept else Reject "non-tree edge detected")

let acyclicity =
  Scheme.of_lowering ~name:"acyclicity"
    ~prover:(fun inst ->
      if Graph.is_tree inst.Instance.graph then
        Some
          (Array.map (encode ~id_bits:inst.Instance.id_bits) (tree_certs inst 0))
      else None)
    {
      Scheme.decode = (fun ~id_bits c -> decode ~id_bits c);
      check =
        (fun ~id_bits:_ ~me ~label:_ mine nbrs ->
          acyclicity_check ~me mine nbrs);
    }

(* Vertex count: spanning-tree certificate extended with the subtree
   size and the claimed global total. *)
type count_cert = { tree : cert; size : int; total : int }

let encode_count ~id_bits c =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.fixed w ~width:id_bits c.tree.root_id;
  Bitbuf.Writer.nat w c.tree.dist;
  Bitbuf.Writer.fixed w ~width:id_bits c.tree.parent_id;
  Bitbuf.Writer.nat w c.size;
  Bitbuf.Writer.nat w c.total;
  Bitbuf.Writer.contents w

let decode_count ~id_bits b =
  Bitbuf.decode b (fun r ->
      let root_id = Bitbuf.Reader.fixed r ~width:id_bits in
      let dist = Bitbuf.Reader.nat r in
      let parent_id = Bitbuf.Reader.fixed r ~width:id_bits in
      let size = Bitbuf.Reader.nat r in
      let total = Bitbuf.Reader.nat r in
      { tree = { root_id; dist; parent_id }; size; total })

let count_certs (inst : Instance.t) root =
  let sp = Spanning.bfs inst.graph ~root in
  let sizes = Spanning.subtree_sizes sp in
  let base = tree_certs inst root in
  Array.init (Instance.n inst) (fun v ->
      { tree = base.(v); size = sizes.(v); total = Instance.n inst })

let count_tree = function Some c -> c.tree | None -> assert false

let count_check ~total_pred ~local ~root_check ~me mine nbrs : Scheme.verdict =
  match mine with
  | None -> Reject "malformed certificate"
  | Some mine -> (
      if any_malformed nbrs then Reject "malformed neighbor certificate"
      else
        let n = Array.length nbrs in
        let nth i =
          match snd nbrs.(i) with Some c -> c | None -> assert false
        in
        match check_tree_arr ~me mine.tree nbrs ~proj:count_tree with
        | Error e -> Reject e
        | Ok () ->
            let rec totals_ok i =
              i >= n || ((nth i).total = mine.total && totals_ok (i + 1))
            in
            if not (totals_ok 0) then Reject "totals disagree"
            else begin
              let children_sum = ref 0 in
              for i = 0 to n - 1 do
                let c = nth i in
                if c.tree.parent_id = me && c.tree.dist = mine.tree.dist + 1
                then children_sum := !children_sum + c.size
              done;
              if mine.size <> !children_sum + 1 then
                Reject "subtree size does not match children"
              else if mine.tree.dist = 0 && mine.size <> mine.total then
                Reject "root size differs from claimed total"
              else if mine.tree.dist = 0 && not (total_pred mine.total) then
                Reject "total fails the predicate"
              else if not (local ~total:mine.total ~me ~degree:n) then
                Reject "local degree check failed"
              else if
                mine.tree.dist = 0
                && not (root_check ~total:mine.total ~degree:n)
              then Reject "root check failed"
              else Accept
            end)

let count_lowering ~total_pred ~local ~root_check :
    count_cert option Scheme.lowering =
  {
    decode = (fun ~id_bits c -> decode_count ~id_bits c);
    check =
      (fun ~id_bits:_ ~me ~label:_ mine nbrs ->
        count_check ~total_pred ~local ~root_check ~me mine nbrs);
  }

let always_local ~total:_ ~me:_ ~degree:_ = true
let always_root ~total:_ ~degree:_ = true

let vertex_count ?(root = 0) ~expected pred_name =
  Scheme.of_lowering
    ~name:(Printf.sprintf "vertex-count[%s]" pred_name)
    ~prover:(fun inst ->
      if Graph.is_connected inst.Instance.graph && expected (Instance.n inst)
      then
        Some
          (Array.map
             (encode_count ~id_bits:inst.Instance.id_bits)
             (count_certs inst root))
      else None)
    (count_lowering ~total_pred:expected ~local:always_local
       ~root_check:always_root)

let counted ?(choose_root = fun _ -> Some 0) ~name ~total_pred ~local
    ~root_check () =
  Scheme.of_lowering ~name
    ~prover:(fun inst ->
      let g = inst.Instance.graph in
      if not (Graph.is_connected g) then None
      else
        match choose_root g with
        | None -> None
        | Some root ->
            let n = Instance.n inst in
            let ok =
              total_pred n
              && Graph.fold_vertices
                   (fun v acc ->
                     acc
                     && local ~total:n ~me:inst.Instance.ids.(v)
                          ~degree:(Graph.degree g v))
                   g true
              && root_check ~total:n ~degree:(Graph.degree g root)
            in
            if ok then
              Some
                (Array.map
                   (encode_count ~id_bits:inst.Instance.id_bits)
                   (count_certs inst root))
            else None)
    (count_lowering ~total_pred ~local ~root_check)

let count_cert_size inst =
  let certs = count_certs inst 0 in
  Array.fold_left
    (fun acc c -> max acc (Bitstring.length (encode_count ~id_bits:inst.Instance.id_bits c)))
    0 certs
