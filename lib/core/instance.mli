(** Certification instances: a connected graph with unique identifiers.

    The model of Section 3.3: vertices carry unique IDs from a
    polynomial range [\[1, n^k\]], so an ID fits in [O(log n)] bits.
    The {!id_bits} width is instance-global public knowledge (every
    codec in the library reads and writes IDs at this width, which is
    how measured certificate sizes inherit their [log n] factors
    honestly). *)

type t = private {
  graph : Graph.t;
  ids : int array;  (** [ids.(v)] = identifier of vertex [v]; unique, ≥ 1 *)
  id_bits : int;  (** width used to encode one identifier *)
  labels : int array;  (** vertex labels (all 0 when unlabeled) *)
}

val make : ?labels:int array -> ?ids:int array -> ?id_bits:int -> Graph.t -> t
(** Default identifiers are [v + 1]; raises [Invalid_argument] on
    duplicate or nonpositive ids, or if the graph is empty.

    [?id_bits] widens the identifier encoding beyond the minimum the
    ids require (raises [Invalid_argument] if too narrow to encode the
    largest id).  A sub-instance that must stay wire-compatible with
    its parent — region-scoped re-certification splices sub-instance
    certificates into a full assignment — passes the parent's width
    here, so every codec reads and writes ids at the same width on
    both sides. *)

val with_random_ids : ?range_exp:int -> Localcert_util.Rng.t -> t -> t
(** Redraw distinct identifiers uniformly from [\[1, n^range_exp\]]
    (default exponent 2) — tests use this to confirm schemes do not
    depend on the friendly default numbering. *)

val vertex_of_id : t -> int -> int option
(** Reverse lookup. *)

val id_of : t -> int -> int
val n : t -> int
val neighbor_ids : t -> int -> int list
(** Sorted identifiers of the neighbors of a vertex. *)
