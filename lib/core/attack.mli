(** Adversarial soundness harness.

    Soundness says: on a no-instance, {e every} certificate assignment
    leaves at least one rejecting vertex.  That is a universally
    quantified statement, so it can only be checked exhaustively on
    tiny budgets or probed adversarially on larger ones.  Both modes
    are here, plus a transplant attack (reusing a *valid* certification
    of a nearby yes-instance on a no-instance — historically the way
    broken schemes actually fail). *)

type report = {
  trials : int;
  fooled : Bitstring.t array option;
      (** a certificate assignment that every vertex accepted, if one
          was found — on a no-instance this is a soundness bug *)
  near_miss : (int * string) option;
      (** the rejecting vertex and reason of the {e last} failed trial
          — how close the adversary got, and which check stopped it.
          [None] when no trial was rejected (or, for {!Engine.attack_par},
          where a deterministic "last" trial does not exist). *)
}

val random_assignments :
  Localcert_util.Rng.t ->
  Scheme.t ->
  Instance.t ->
  trials:int ->
  max_bits:int ->
  report
(** Uniform random certificates of length ≤ [max_bits] per vertex. *)

val exhaustive :
  Scheme.t -> Instance.t -> max_bits:int -> report
(** Every assignment of certificates of length 0..[max_bits] to every
    vertex — [(2^(max_bits+1) - 1)^n] runs; keep [n·max_bits] tiny. *)

val corruptions :
  Localcert_util.Rng.t ->
  Scheme.t ->
  Instance.t ->
  base:Bitstring.t array ->
  trials:int ->
  report
(** Random single/multi-bit flips and certificate swaps applied to a
    base assignment (e.g. a valid certification of a different
    instance, or of this instance before an edge was removed). *)

val transplant :
  Scheme.t ->
  from_instance:Instance.t ->
  to_instance:Instance.t ->
  report
(** Certify [from_instance] (a yes-instance) and replay its
    certificates verbatim on [to_instance] (same vertex count).  The
    classic cut-and-plug probe. *)
