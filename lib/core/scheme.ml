type view = {
  me : int;
  id_bits : int;
  label : int;
  cert : Bitstring.t;
  nbrs : (int * Bitstring.t) list;
}

type verdict = Accept | Reject of string

(* A lowering splits a radius-1 verifier into a total per-certificate
   decode stage and a check stage over pre-decoded values.  The
   interpreted verifier decodes every view from scratch; the compiled
   engine path (Localcert_engine.Vcompile) decodes each distinct
   certificate once and reuses the result across every vertex that
   sees it.  Because both paths end in the same [check], they agree on
   every verdict — reason strings included — by construction. *)
type 'dec lowering = {
  decode : id_bits:int -> Bitstring.t -> 'dec;
  check :
    id_bits:int ->
    me:int ->
    label:int ->
    'dec ->
    ids:int array ->
    decs:'dec array ->
    lo:int ->
    hi:int ->
    verdict;
  flat : 'dec flat option;
}

(* A flat plane lets the compiled engine replace the boxed [decs]
   array with a struct-of-arrays int plane: slot [i]'s fields live at
   [i * width].  Boxed decoded records are placed by the major-heap
   allocator's size-class free lists, so at 10⁶+ vertices each
   neighbor dereference is a cache miss on any graph whose adjacency
   is not id-local; an int plane is one contiguous unboxed array and
   the same row walk streams it sequentially.  [check_flat] must agree
   with [check] verdict-for-verdict (reason strings included) — the
   interpreted path still runs [check], and the differential tests
   hold the two to each other. *)
and 'dec flat = {
  width : int;
  write : 'dec -> int array -> int -> unit;
  check_flat :
    id_bits:int ->
    me:int ->
    label:int ->
    mine:int array ->
    mbase:int ->
    ids:int array ->
    plane:int array ->
    lo:int ->
    hi:int ->
    verdict;
}

type compiled = Compiled : 'dec lowering -> compiled

type t = {
  name : string;
  prover : Instance.t -> Bitstring.t array option;
  verifier : view -> verdict;
  compiled : compiled option;
}

let check_lowered (Compiled l) (view : view) =
  let id_bits = view.id_bits in
  let mine = l.decode ~id_bits view.cert in
  let ids = Array.of_list (List.map fst view.nbrs) in
  let decs =
    Array.of_list (List.map (fun (_, c) -> l.decode ~id_bits c) view.nbrs)
  in
  l.check ~id_bits ~me:view.me ~label:view.label mine ~ids ~decs ~lo:0
    ~hi:(Array.length ids)

let of_lowering ~name ~prover l =
  let compiled = Compiled l in
  {
    name;
    prover;
    verifier = (fun view -> check_lowered compiled view);
    compiled = Some compiled;
  }

type outcome = {
  accepted : bool;
  rejections : (int * string) list;
  max_bits : int;
}

let view_of (inst : Instance.t) certs v =
  let nbrs =
    Graph.fold_neighbors inst.Instance.graph v
      (fun acc w -> (inst.Instance.ids.(w), certs.(w)) :: acc)
      []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    me = inst.Instance.ids.(v);
    id_bits = inst.Instance.id_bits;
    label = inst.Instance.labels.(v);
    cert = certs.(v);
    nbrs;
  }

let max_cert_bits certs =
  Array.fold_left (fun acc c -> max acc (Bitstring.length c)) 0 certs

(* Telemetry for a completed exhaustive sweep.  Accept/reject is a
   property of the outcome, so for exhaustive sweeps the counters are
   deterministic under any scheduling.  Early-exit sweeps are not
   counted at all: they are the attack path, where racing trial
   pruning makes even the {e number} of sweeps scheduling-dependent. *)
let record_outcome scheme ~early_exit outcome =
  if (not early_exit) && Metrics.is_enabled () then begin
    let prefix = "scheme." ^ scheme.name ^ "." in
    Metrics.incr
      (Metrics.counter
         (prefix ^ if outcome.accepted then "accept" else "reject"));
    Metrics.add
      (Metrics.counter (prefix ^ "rejections"))
      (List.length outcome.rejections)
  end

let record_cert_sizes scheme certs =
  if Metrics.is_enabled () then begin
    let h = Metrics.histogram ("scheme." ^ scheme.name ^ ".cert_bits") in
    Array.iter (fun c -> Metrics.observe h (Bitstring.length c)) certs
  end

let run ?(early_exit = false) scheme inst certs =
  let rejections = ref [] in
  (try
     for v = Graph.n inst.Instance.graph - 1 downto 0 do
       match scheme.verifier (view_of inst certs v) with
       | Accept -> ()
       | Reject reason ->
           rejections := (v, reason) :: !rejections;
           if early_exit then raise Exit
     done
   with Exit -> ());
  let outcome =
    {
      accepted = !rejections = [];
      rejections = !rejections;
      max_bits = max_cert_bits certs;
    }
  in
  record_outcome scheme ~early_exit outcome;
  outcome

let certify scheme inst =
  Span.with_ "certify" @@ fun () ->
  Span.with_ scheme.name @@ fun () ->
  match Span.with_ "prover" (fun () -> scheme.prover inst) with
  | None ->
      Logger.debug ~fields:[ ("scheme", scheme.name) ] "prover gave up";
      None
  | Some certs ->
      (* hash-cons the labels: duplicate certificates (common in
         broadcast-style schemes) share one allocation.  Interning is
         observation-equal, so the outcome and max_bits are unchanged. *)
      let certs = Cert_store.intern_all certs in
      record_cert_sizes scheme certs;
      let outcome = Span.with_ "verify" (fun () -> run scheme inst certs) in
      Logger.debug
        ~fields:
          [
            ("scheme", scheme.name);
            ("accepted", string_of_bool outcome.accepted);
            ("max_bits", string_of_int outcome.max_bits);
          ]
        "certify done";
      Some (certs, outcome)

let certificate_size scheme inst =
  match scheme.prover inst with
  | None -> None
  | Some certs ->
      Some
        (Array.fold_left (fun acc c -> max acc (Bitstring.length c)) 0 certs)

let accepts_with scheme inst certs =
  (run ~early_exit:true scheme inst certs).accepted

(* Pair encoding: length-prefixed first component, then the second. *)
let encode_pair a b =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.bitstring w a;
  Bitbuf.Writer.bitstring w b;
  Bitbuf.Writer.contents w

let decode_pair c =
  Bitbuf.decode c (fun r ->
      let a = Bitbuf.Reader.bitstring r in
      let b = Bitbuf.Reader.bitstring r in
      (a, b))

let conjoin ~name s1 s2 =
  let prover inst =
    match (s1.prover inst, s2.prover inst) with
    | Some c1, Some c2 -> Some (Array.map2 encode_pair c1 c2)
    | _ -> None
  in
  let verifier view =
    let split c = decode_pair c in
    match split view.cert with
    | None -> Reject "conjoin: malformed pair certificate"
    | Some (mine1, mine2) -> (
        let halves =
          List.map (fun (id, c) -> (id, split c)) view.nbrs
        in
        if List.exists (fun (_, h) -> h = None) halves then
          Reject "conjoin: malformed neighbor certificate"
        else
          let part proj mine =
            {
              view with
              cert = mine;
              nbrs =
                List.map
                  (fun (id, h) -> (id, proj (Option.get h)))
                  halves;
            }
          in
          match s1.verifier (part fst mine1) with
          | Reject r -> Reject (s1.name ^ ": " ^ r)
          | Accept -> (
              match s2.verifier (part snd mine2) with
              | Reject r -> Reject (s2.name ^ ": " ^ r)
              | Accept -> Accept))
  in
  { name; prover; verifier; compiled = None }

let disjoin ~name s1 s2 =
  let tag bit c =
    let w = Bitbuf.Writer.create () in
    Bitbuf.Writer.bit w bit;
    Bitbuf.Writer.bitstring w c;
    Bitbuf.Writer.contents w
  in
  let untag c =
    Bitbuf.decode c (fun r ->
        let bit = Bitbuf.Reader.bit r in
        let body = Bitbuf.Reader.bitstring r in
        (bit, body))
  in
  let prover inst =
    match s1.prover inst with
    | Some c1 -> Some (Array.map (tag false) c1)
    | None -> (
        match s2.prover inst with
        | Some c2 -> Some (Array.map (tag true) c2)
        | None -> None)
  in
  let verifier view =
    match untag view.cert with
    | None -> Reject "disjoin: malformed certificate"
    | Some (sel, body) -> (
        let nbrs = List.map (fun (id, c) -> (id, untag c)) view.nbrs in
        if List.exists (fun (_, u) -> u = None) nbrs then
          Reject "disjoin: malformed neighbor certificate"
        else if
          List.exists (fun (_, u) -> fst (Option.get u) <> sel) nbrs
        then Reject "disjoin: neighbors disagree on the selector"
        else
          let inner =
            {
              view with
              cert = body;
              nbrs = List.map (fun (id, u) -> (id, snd (Option.get u))) nbrs;
            }
          in
          if sel then s2.verifier inner else s1.verifier inner)
  in
  { name; prover; verifier; compiled = None }

let trivial ~name verifier =
  {
    name;
    prover = (fun inst -> Some (Array.make (Instance.n inst) Bitstring.empty));
    verifier;
    compiled = None;
  }
