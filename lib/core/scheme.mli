(** The local certification framework (Section 3.3).

    A scheme is a prover together with a radius-1 verifier:

    - the {e prover} sees the whole instance and, on yes-instances,
      produces one certificate (bit string) per vertex;
    - the {e verifier} runs at each vertex on its {!view} — its own
      identifier and certificate and the identifiers and certificates
      of its neighbors (radius exactly 1: it does {e not} see edges
      among its neighbors, per Section 2.2 / Appendix A.1) — and
      accepts or rejects.

    A scheme certifies a property when (completeness) on yes-instances
    the prover's certificates make every vertex accept, and (soundness)
    on no-instances {e every} certificate assignment is rejected by at
    least one vertex.  {!run} decides one assignment; the adversarial
    side lives in {!Attack}. *)

type view = {
  me : int;  (** own identifier *)
  id_bits : int;  (** instance-global ID width (public knowledge) *)
  label : int;  (** own vertex label (0 when unlabeled) *)
  cert : Bitstring.t;
  nbrs : (int * Bitstring.t) list;
      (** (identifier, certificate) of each neighbor, sorted by id *)
}

type verdict = Accept | Reject of string
(** Rejections carry a human-readable reason; the framework treats any
    [Reject _] identically. *)

type 'dec lowering = {
  decode : id_bits:int -> Bitstring.t -> 'dec;
      (** Total per-certificate decoding: malformed input is
          represented {e inside} ['dec] (e.g. with an option), never
          raised, so a decoded value can be computed once per distinct
          certificate and shared by every vertex that sees it. *)
  check :
    id_bits:int ->
    me:int ->
    label:int ->
    'dec ->
    ids:int array ->
    decs:'dec array ->
    lo:int ->
    hi:int ->
    verdict;
      (** The radius-1 check over pre-decoded certificates.  The
          neighbors live in the parallel slices
          [ids.(lo..hi-1)]/[decs.(lo..hi-1)], sorted ascending by
          identifier — for the compiled engine these are whole-graph
          CSR-shaped arrays shared by every vertex (one row per
          vertex, zero per-view allocation); the interpreted path
          passes a 0-based pair built from the view. *)
  flat : 'dec flat option;
      (** Optional struct-of-arrays plane for the compiled engine;
          [None] keeps the boxed [decs] layout. *)
}

and 'dec flat = {
  width : int;  (** ints per decoded value *)
  write : 'dec -> int array -> int -> unit;
      (** [write d plane base] stores [d]'s fields at
          [plane.(base .. base + width - 1)]. *)
  check_flat :
    id_bits:int ->
    me:int ->
    label:int ->
    mine:int array ->
    mbase:int ->
    ids:int array ->
    plane:int array ->
    lo:int ->
    hi:int ->
    verdict;
      (** [check] over planes instead of boxed values: the vertex's
          own fields live at [mine.(mbase .. mbase + width - 1)] and
          slot [i]'s fields at [plane.(i * width ..)], parallel to
          [ids.(i)].  Must agree with [check] verdict-for-verdict,
          reason strings included — the interpreted verifier still
          runs [check], and the engine's differential tests hold the
          two paths to each other. *)
}
(** A scheme verifier split into decode and check stages.  The
    interpreted verifier and the ahead-of-time compiled engine path
    ({!Localcert_engine.Vcompile}) both end in the same [check], so
    their verdicts — reason strings included — agree by construction.

    Why planes exist: decoded records are boxed, and the major heap's
    size-class free lists place them wherever holes are — at 10⁶+
    vertices every neighbor dereference in a row walk is then a cache
    miss on any graph whose adjacency is not id-local.  An int plane
    is one contiguous unboxed array; the same walk streams it
    sequentially, which is what holds verify throughput flat from
    n=16384 to n=10⁶ (DESIGN §5.7). *)

type compiled = Compiled : 'dec lowering -> compiled
(** A lowering with its decoded representation abstracted away — what
    a scheme publishes for the engine to compile. *)

type t = {
  name : string;
  prover : Instance.t -> Bitstring.t array option;
      (** [None] when the instance is a no-instance (or the prover
          cannot find a witness); [Some certs] indexed by vertex. *)
  verifier : view -> verdict;
  compiled : compiled option;
      (** The verifier's lowering, when the scheme has one.  [None]
          makes every engine fall back to [verifier]. *)
}

val check_lowered : compiled -> view -> verdict
(** Run a lowering on one view, decoding from scratch — the
    interpreted reference semantics of a lowered scheme. *)

val of_lowering :
  name:string ->
  prover:(Instance.t -> Bitstring.t array option) ->
  'dec lowering ->
  t
(** A scheme whose verifier {e is} its lowering (via
    {!check_lowered}), guaranteeing interpreted ≡ compiled. *)

type outcome = {
  accepted : bool;
  rejections : (int * string) list;  (** rejecting vertices with reasons *)
  max_bits : int;  (** size of the largest certificate in the run *)
}

val view_of : Instance.t -> Bitstring.t array -> int -> view
(** The radius-1 view of a vertex under a certificate assignment. *)

val run : ?early_exit:bool -> t -> Instance.t -> Bitstring.t array -> outcome
(** Execute the verifier at every vertex.  With [~early_exit:true] the
    sweep stops at the first rejecting vertex, so [rejections] contains
    exactly one entry on rejection; [accepted] and [max_bits] are
    unaffected.  The default [false] reports every rejecting vertex. *)

val max_cert_bits : Bitstring.t array -> int
(** Size of the largest certificate in an assignment (the [max_bits]
    field of an {!outcome}). *)

val certify : t -> Instance.t -> (Bitstring.t array * outcome) option
(** Prover then verifier; [None] if the prover declines. *)

val certificate_size : t -> Instance.t -> int option
(** Max certificate bits the prover uses on this instance ([None] if it
    declines) — the paper's measure of a certification. *)

val accepts_with : t -> Instance.t -> Bitstring.t array -> bool
(** [run] reduced to the global conjunction. *)

val record_cert_sizes : t -> Bitstring.t array -> unit
(** Feed every certificate's bit length into the per-scheme
    [scheme.<name>.cert_bits] telemetry histogram.  [certify] calls
    this itself; exposed for drivers that invoke the prover directly
    (the CLI). *)

val record_outcome : t -> early_exit:bool -> outcome -> unit
(** Bump the per-scheme accept/reject/rejections telemetry counters
    ({!Localcert_obs.Metrics}) for a completed sweep.  [run] calls this
    itself; it is exposed for alternative sweep implementations
    ({!Localcert_engine.Engine.run_par}).  Early-exit sweeps are never
    counted — under racing attack-trial pruning even the number of
    such sweeps is scheduling-dependent. *)

(** {1 Combinators} *)

val conjoin : name:string -> t -> t -> t
(** Certify both properties: certificates are length-prefixed pairs;
    each vertex runs both verifiers on the respective halves. *)

val disjoin : name:string -> t -> t -> t
(** Certify a disjunction: a selector bit (checked equal between
    neighbors, hence global by connectivity) says which scheme's
    certificate follows. *)

val trivial : name:string -> (view -> verdict) -> t
(** A scheme with empty certificates (e.g. "max degree ≤ 3" needs none:
    the view alone decides). *)
