(* Per-vertex verdict cache + dirty-set propagator for the incremental
   runtime (DESIGN §5.4).

   Soundness rests on two facts.  First, a radius-1 verifier's verdict
   is a pure function of its view, and the only view components that
   change between rounds are the vertex's own certificate and its
   inbox — captured exactly by [View_key].  Second, every view change
   is caused by a fault event in the current round's event list,
   except for the reversion of a transient wire fault (a dropped or
   flipped message re-sent honestly), which happens exactly one round
   after the event.  So the set of vertices whose view may have
   changed this round is

     closure(fault events this round) ∪ carry(previous round)

   where the closure maps a vertex-state fault to the vertex and its
   neighbors, a wire fault to the receiving vertex ([Trace.scope]),
   and the carry re-checks, one round later, every vertex that sat in
   a transient's scope or whose key actually changed.  Everything
   outside that set provably has the same view as when its cached
   verdict was computed.

   Determinism: the candidate set is computed sequentially from the
   (canonical, jobs-invariant) event list; the parallel fan-out only
   writes per-vertex fields of distinct candidates, so there is no
   cross-domain contention and no scheduling-dependent state. *)

type entry = {
  mutable key : View_key.t option;
      (* view key at the last digest check; [None] before round 1 and
         for vertices that render no verdict *)
  mutable verdict : Scheme.verdict option;  (* verdict for [key] *)
  mutable changed : bool;  (* key changed during the current round *)
}

type t = {
  entries : entry array;
  carry : bool array;  (* re-check in the next round *)
  dirty : bool array;  (* scratch: the current round's candidate set *)
}

let create n =
  {
    entries =
      Array.init n (fun _ -> { key = None; verdict = None; changed = false });
    carry = Array.make n false;
    dirty = Array.make n false;
  }

(* Closed neighborhoods are taken in the graph as it stands {e after}
   the round's edits — for a topology event both endpoints' current
   neighbors see a different inbox (a new sender appeared or an old
   one fell silent), and the endpoints themselves broadcast to a
   different set.  The just-removed counterparty is its own event's
   endpoint, so it is marked even though it is no longer a neighbor. *)
let mark_scope graph dirty = function
  | Trace.Self_and_neighbors v ->
      dirty.(v) <- true;
      Graph.Delta.iter_neighbors graph v (fun w -> dirty.(w) <- true)
  | Trace.Inbox v -> dirty.(v) <- true
  | Trace.Endpoints (u, v) ->
      dirty.(u) <- true;
      Graph.Delta.iter_neighbors graph u (fun w -> dirty.(w) <- true);
      dirty.(v) <- true;
      Graph.Delta.iter_neighbors graph v (fun w -> dirty.(w) <- true)
  | Trace.Pure -> ()

(* The round's candidate list, ascending.  Sequential by design: it
   must be a pure function of the event list, never of scheduling. *)
let candidates t ~graph ~first_round events =
  let n = Array.length t.entries in
  Array.fill t.dirty 0 n false;
  if first_round then Array.fill t.dirty 0 n true
  else begin
    Array.blit t.carry 0 t.dirty 0 n;
    List.iter (fun e -> mark_scope graph t.dirty (Trace.scope e)) events
  end;
  let out = ref [] in
  for v = n - 1 downto 0 do
    if t.dirty.(v) then begin
      t.entries.(v).changed <- false;
      out := v :: !out
    end
  done;
  !out

(* Candidate-side accessors, called from the parallel fan-out.  Each
   candidate is owned by exactly one chunk, so the mutations below are
   single-writer per entry. *)

let check t v key =
  let e = t.entries.(v) in
  match e.key with
  | Some k when View_key.equal k key -> e.verdict
  | _ -> None

let store t v key verdict =
  let e = t.entries.(v) in
  e.changed <- Option.is_some e.key;
  e.key <- Some key;
  e.verdict <- Some verdict

let skip t v =
  (* crashed or Byzantine: renders no verdict, and stays that way *)
  let e = t.entries.(v) in
  e.key <- None;
  e.verdict <- None;
  e.changed <- false

let verdict t v = t.entries.(v).verdict

(* Next round's carry: the scopes of this round's transient events
   (their reversion is unmarked) plus every candidate whose key
   actually changed (one extra cheap re-check; keeps the invariant
   robust rather than relying on a sharper reversion analysis). *)
let update_carry t ~graph events =
  let n = Array.length t.entries in
  Array.fill t.carry 0 n false;
  List.iter
    (fun e ->
      if Trace.is_transient e then mark_scope graph t.carry (Trace.scope e))
    events;
  for v = 0 to n - 1 do
    if t.entries.(v).changed then t.carry.(v) <- true
  done
