(** Fault plans for the round-based runtime.

    A plan describes the adversary/environment the {!Runtime} simulator
    applies at every communication round.  All rates are per-round
    probabilities; every random decision is drawn from a per-vertex
    {!Localcert_util.Rng.split} stream, so an execution under a plan is
    a pure function of the seed — never of the job count.

    The fault kinds mirror the self-stabilization literature behind
    proof-labeling schemes:

    - {e drops}: a message (one certificate broadcast over one directed
      edge) is lost, making the sender silent toward that neighbor for
      the round;
    - {e flips}: one uniformly chosen bit of a message is inverted on
      the wire (transient — the stored certificate is unharmed);
    - {e corruption}: a vertex's {e stored} certificate is mutated
      (one-bit flip or same-length random replacement, the
      {!Attack.corruptions} mutations) — persistent until the end of
      the execution;
    - {e crashes}: a vertex halts permanently: it sends nothing and
      renders no verdicts from the crash round on;
    - {e Byzantine} vertices (drawn once, in round 1) send arbitrary,
      per-neighbor random certificates instead of their own and render
      no verdicts. *)

type t = {
  name : string;  (** the spec string the plan was built from *)
  drop : float;  (** P(message dropped), per directed edge per round *)
  flip : float;  (** P(one message bit flipped), per directed edge per round *)
  corrupt : float;  (** P(stored certificate mutated), per vertex per round *)
  crash : float;  (** P(vertex crashes), per vertex per round *)
  crashed : int list;  (** vertices deterministically crashed in round 1 *)
  byzantine : float;  (** P(vertex is Byzantine), drawn once in round 1 *)
  byz_bits : int;  (** max length of a forged Byzantine message *)
}

val none : t
(** The fault-free plan: under it, every round is exactly
    {!Scheme.run}. *)

val is_none : t -> bool
(** No fault kind can ever fire under this plan. *)

val drops : float -> t
val flips : float -> t
val corruption : float -> t
val crashes : float -> t
(** Single-kind plans.  Each raises [Invalid_argument] on a rate
    outside [\[0, 1\]]. *)

val crash_vertices : int list -> t
(** Deterministically crash the listed vertices in round 1 (targeted
    tests: e.g. crash every neighbor of one vertex). *)

val byzantine : ?bits:int -> float -> t
(** Byzantine vertices with forged messages of up to [bits] (default
    16) bits. *)

val union : t -> t -> t
(** Pointwise-worst combination of two plans (max of each rate, union
    of crash lists). *)

val of_spec : string -> (t, string) result
(** Parse a plan from a CLI spec: ["none"], or a comma-separated list
    of [kind:value] items with kind one of [drop], [flip], [corrupt],
    [crash], [byz] (value a probability) or [crashed] (value a
    [+]-separated vertex list), e.g. ["drop:0.1,corrupt:0.05"]. *)

val to_string : t -> string
(** The spec the plan was built from ([name]). *)
