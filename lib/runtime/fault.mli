(** Fault plans for the round-based runtime.

    A plan describes the adversary/environment the {!Runtime} simulator
    applies at every communication round.  All rates are per-round
    probabilities; every random decision is drawn from a per-vertex
    {!Localcert_util.Rng.split} stream (topology churn from a dedicated
    per-round stream), so an execution under a plan is a pure function
    of the seed — never of the job count.

    The fault kinds mirror the self-stabilization literature behind
    proof-labeling schemes:

    - {e drops}: a message (one certificate broadcast over one directed
      edge) is lost, making the sender silent toward that neighbor for
      the round;
    - {e flips}: one uniformly chosen bit of a message is inverted on
      the wire (transient — the stored certificate is unharmed);
    - {e corruption}: a vertex's {e stored} certificate is mutated
      (one-bit flip or same-length random replacement, the
      {!Attack.corruptions} mutations) — persistent until the end of
      the execution;
    - {e crashes}: a vertex halts permanently: it sends nothing and
      renders no verdicts from the crash round on;
    - {e Byzantine} vertices (drawn once, in round 1) send arbitrary,
      per-neighbor random certificates instead of their own and render
      no verdicts;
    - {e topology churn}: edges appear and vanish, either at random
      ([addedge]/[deledge] rates, per vertex per round) or on a
      deterministic schedule ([edits]) — the certified property may
      become stale, which {!Runtime.execute}'s [~recover] mode heals by
      re-proving the affected region.

    [horizon] bounds the rounds in which {e rate-based} kinds fire
    (after round [horizon] the environment goes quiet, which is what
    makes rounds-to-quiescence measurable); the deterministic [crashed]
    list and [edits] schedule are unaffected by it. *)

type edit = { round : int; add : bool; u : int; v : int }
(** One scheduled topology edit: in round [round] (1-based), edge
    [u–v] ([u < v]) is added ([add]) or removed.  Constructors
    normalize endpoint order. *)

type t = {
  name : string;
      (** canonical spec rendering of the plan — see {!to_string} *)
  drop : float;  (** P(message dropped), per directed edge per round *)
  flip : float;  (** P(one message bit flipped), per directed edge per round *)
  corrupt : float;  (** P(stored certificate mutated), per vertex per round *)
  crash : float;  (** P(vertex crashes), per vertex per round *)
  crashed : int list;
      (** vertices deterministically crashed in round 1; sorted,
          duplicate-free *)
  byzantine : float;  (** P(vertex is Byzantine), drawn once in round 1 *)
  byz_bits : int;  (** max length of a forged Byzantine message *)
  addedge : float;
      (** P(vertex gains an edge to a uniform non-neighbor), per vertex
          per round *)
  deledge : float;
      (** P(vertex loses a uniform incident edge), per vertex per
          round *)
  edits : edit list;  (** deterministic edit schedule, sorted *)
  horizon : int;
      (** last round in which rate-based kinds fire ([max_int]: no
          bound) *)
}

val none : t
(** The fault-free plan: under it, every round is exactly
    {!Scheme.run}. *)

val is_none : t -> bool
(** No fault kind can ever fire under this plan. *)

val drops : float -> t
val flips : float -> t
val corruption : float -> t
val crashes : float -> t
(** Single-kind plans.  Each raises [Invalid_argument] on a rate
    outside [\[0, 1\]]. *)

val crash_vertices : int list -> t
(** Deterministically crash the listed vertices in round 1 (targeted
    tests: e.g. crash every neighbor of one vertex).  Raises
    [Invalid_argument] on a negative vertex; {!Runtime.execute}
    validates the ids against the instance size. *)

val byzantine : ?bits:int -> float -> t
(** Byzantine vertices with forged messages of up to [bits] (default
    16) bits. *)

val edge_additions : float -> t
(** Random churn: each round (up to [horizon]), each vertex gains an
    edge to a uniformly random non-neighbor with this probability. *)

val edge_deletions : float -> t
(** Random churn: each round (up to [horizon]), each vertex loses a
    uniformly random incident edge with this probability. *)

val edit : round:int -> add:bool -> int -> int -> t
(** [edit ~round ~add u v] schedules one deterministic edit.  Raises
    [Invalid_argument] on [round < 1], a loop, or a negative
    endpoint. *)

val until : int -> t
(** [until r] bounds rate-based faults to rounds [1..r].  Combine with
    [union]: [union (corruption 0.05) (until 3)] corrupts only in the
    first three rounds, after which recovery can quiesce. *)

val union : t -> t -> t
(** Pointwise-worst combination of two plans: max of each rate, union
    of crash lists and edit schedules, the {e stricter} (smaller)
    horizon — so unioning with {!until} bounds the combined plan —
    and the Byzantine bit budget of whichever side actually has
    Byzantine vertices (worst of both when both do). *)

val of_spec : string -> (t, string) result
(** Parse a plan from a CLI spec: ["none"], or a comma-separated list
    of [kind:value] items with kind one of [drop], [flip], [corrupt],
    [crash], [addedge], [deledge] (value a probability), [byz] (value
    [RATE] or [RATE:BITS]), [crashed] (value a [+]-separated vertex
    list), [edit] (value [ROUND:+U-V] to add or [ROUND:-U-V] to remove
    the edge [U–V] in round [ROUND]) or [until] (value a round
    number), e.g. ["drop:0.1,corrupt:0.05"] or
    ["deledge:0.01,addedge:0.01,until:3,edit:2:+0-5"]. *)

val to_string : t -> string
(** The plan's canonical spec ([name]).  Round-trip law:
    [of_spec (to_string p) = Ok p] for every plan built from the
    constructors above, [union]s of them, or [of_spec] itself — the
    name is re-derived from the fields after every operation, never
    concatenated from operand names. *)
