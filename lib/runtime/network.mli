(** One communication round: broadcast, faults, delivery.

    Each alive vertex broadcasts its stored certificate to every
    neighbor in the {e current} topology (a {!Graph.Delta} overlay, so
    churned edges take effect in the round they were edited); the
    fault plan intercepts state (crash, Byzantine conversion,
    stored-certificate corruption) and messages (drop, bit flip,
    forgery) on the way.

    Determinism contract: vertex [v]'s step consumes randomness only
    from [streams.(v)] and mutates only [nodes.(v)], so the phase can
    be sharded across any number of domains without changing the
    outcome — events are reassembled in ascending vertex order
    afterwards.  The overlay is only read here; the runtime applies
    edits sequentially between rounds. *)

val exchange :
  pool:Pool.t ->
  plan:Fault.t ->
  first_round:bool ->
  active:bool ->
  graph:Graph.Delta.t ->
  nodes:Node.t array ->
  streams:Localcert_util.Rng.t array ->
  Trace.event list * (int * Bitstring.t) list array
(** [exchange ~pool ~plan ~first_round ~active ~graph ~nodes ~streams]
    plays one round of message exchange.  Returns the sender-side
    events (in canonical ascending-sender order) and, per vertex, the
    inbox of [(sender id, payload)] messages that survived the faults.

    [active] is whether the round is within the plan's
    {!Fault.t.horizon}: when [false], every random number is still
    drawn (the stream schedule never depends on the horizon) but no
    rate-based fault fires — already-Byzantine vertices keep forging,
    already-crashed vertices stay silent.

    Per vertex the stream is consumed in a fixed order: round-1
    Byzantine draw, crash draw, corruption draw (plus mutation draws
    when it fires), then per neighbor in ascending vertex order a drop
    draw, a flip draw and — for Byzantine senders — the forged
    payload.  The plan's deterministic [crashed] list is applied in
    round 1 through a precomputed mask (no per-vertex list scan);
    {!Runtime.execute} validates those ids before the first round.
    [nodes] is mutated in place (status transitions, corrupted
    certificates). *)
