(** One communication round: broadcast, faults, delivery.

    Each alive vertex broadcasts its stored certificate to every
    neighbor; the fault plan intercepts state (crash, Byzantine
    conversion, stored-certificate corruption) and messages (drop, bit
    flip, forgery) on the way.

    Determinism contract: vertex [v]'s step consumes randomness only
    from [streams.(v)] and mutates only [nodes.(v)], so the phase can
    be sharded across any number of domains without changing the
    outcome — events are reassembled in ascending vertex order
    afterwards. *)

val exchange :
  pool:Pool.t ->
  plan:Fault.t ->
  first_round:bool ->
  inst:Instance.t ->
  nodes:Node.t array ->
  streams:Localcert_util.Rng.t array ->
  Trace.event list * (int * Bitstring.t) list array
(** [exchange ~pool ~plan ~first_round ~inst ~nodes ~streams] plays one
    round of message exchange.  Returns the sender-side events (in
    canonical ascending-sender order) and, per vertex, the inbox of
    [(sender id, payload)] messages that survived the faults.

    Per vertex the stream is consumed in a fixed order: round-1
    Byzantine draw, crash draw, corruption draw (plus mutation draws
    when it fires), then per neighbor in ascending vertex order a drop
    draw, a flip draw and — for Byzantine senders — the forged
    payload.  [nodes] is mutated in place (status transitions,
    corrupted certificates). *)
