type status = Alive | Crashed | Byzantine

type t = {
  vertex : int;
  id : int;
  mutable cert : Bitstring.t;
  mutable status : status;
}

let boot inst certs =
  let n = Instance.n inst in
  if Array.length certs <> n then
    invalid_arg "Node.boot: certificate count does not match the instance";
  (* Interned boot certificates make the per-round re-broadcast of an
     unchanged label a pointer send (the payload aliases [cert]), and
     neighbour-agreement checks pointer-fast.  Wire-bit accounting only
     reads lengths, so it is unaffected. *)
  Array.init n (fun v ->
      {
        vertex = v;
        id = Instance.id_of inst v;
        cert = Cert_store.intern certs.(v);
        status = Alive;
      })

let view inst node ~inbox =
  {
    Scheme.me = node.id;
    id_bits = inst.Instance.id_bits;
    label = inst.Instance.labels.(node.vertex);
    cert = node.cert;
    nbrs = List.sort (fun (a, _) (b, _) -> Int.compare a b) inbox;
  }
