(** Round-based distributed execution of certification schemes.

    The paper's model (Section 2.2 / Appendix A.1) is a distributed
    protocol: every vertex receives its neighbors' certificates and
    decides locally.  {!execute} actually runs that protocol — each
    round, every alive vertex broadcasts its stored certificate, a
    {!Fault} plan intercepts state, messages {e and topology} (edges
    appear and vanish through a {!Graph.Delta} overlay), each vertex
    assembles a {!Scheme.view} from what it received and runs the
    verifier.

    Contracts anchoring the simulator:

    - {e Reference equivalence}: under {!Fault.none} with [~rounds:1],
      the final {!Scheme.outcome} is identical to
      [Scheme.run scheme inst certs] — same [accepted], same
      [max_bits], same [rejections] (order and reasons included).
    - {e Seed determinism}: the whole execution — outcome {e and}
      trace, byte for byte — is a function of
      [(seed, plan, rounds, recover)] only, never of [?jobs] or
      scheduling.  Randomness is dealt from
      {!Localcert_util.Rng.split} streams keyed by (round, vertex),
      plus one sequentially-consumed topology stream per round.
    - {e Final-state equivalence}: for plans without message faults or
      crash/Byzantine kinds (topology churn, scheduled edits and
      corruption are fine), the final round's outcome equals a
      from-scratch [Scheme.run] on [final_graph] with [final_certs] —
      the simulated network state never drifts from the committed
      topology it claims to describe.

    Multi-round executions model self-stabilizing re-verification:
    persistent faults (corrupted certificates, crashes, stale
    certificates after churn) accumulate, {!result.detected_at}
    reports the first round in which some honest vertex rejected, and
    {!result.quiesced_at} the first round after the last fault from
    which every round accepted.

    {2 Acceptance semantics}

    A round's outcome counts the verdicts of alive, honest vertices
    only — crashed and Byzantine vertices render none.  A round that
    renders {e zero} verdicts (every vertex crashed or Byzantine) is
    {e not} accepted: vacuous acceptance would credit a dead network
    with certifying its property.  Such a round is not a detection
    either ([detected_at] requires an explicit rejecting verdict); it
    simply never accepts, so it also blocks quiescence.  The per-round
    [Trace.round_log.verdicts_rendered] count makes the distinction
    auditable in traces.

    {2 Incremental verification}

    By default the runtime does {e not} re-run the verifier at every
    vertex every round.  A radius-1 verdict is a pure function of the
    view, so between rounds it can only change at vertices within
    distance 1 of a fault event (or downstream of a transient fault's
    reversion); {!Vcache} computes that dirty set from the round's
    canonical event list — a topology edit dirties both endpoints'
    closed neighborhoods in the post-edit overlay, a recovery dirties
    the re-adopting vertex and its neighbors — and cached verdicts are
    reused everywhere else.  The mode is {e drop-in exact}: outcomes,
    [detected_at], [quiesced_at] and the trace are byte-identical to
    the full sweep ([~incremental:false]), and the dirty set is
    computed sequentially so [checked]/[reverified] — and the
    [runtime.vertices_reverified] / [runtime.verdicts_cached] metrics
    counters — are deterministic across job counts.  See DESIGN §5.4
    and §5.9.

    {2 Self-healing}

    With [~recover:true], a round that follows a detection starts by
    re-certifying: the current overlay is committed to a clean CSR,
    {!Recert.recertify} re-runs the prover on the region reachable
    from the suspect seeds (edit endpoints and rejecting vertices
    accumulated since the last attempt), and every alive vertex whose
    certificate changed re-adopts it (a {!Trace.Recover} event; the
    new certificate is broadcast in this same round).  Recovery is
    skipped when nothing happened since the last attempt — re-proving
    would reproduce the same assignment, e.g. when the persistent
    cause is a crashed neighbor no certificate can paper over.
    Recovery is deterministic and independent of [?jobs]. *)

type result = {
  outcome : Scheme.outcome;  (** the final round's outcome *)
  per_round : Scheme.outcome array;  (** outcome of every round, in order *)
  detected_at : int option;
      (** first round (1-based) with a rejecting verdict *)
  quiesced_at : int option;
      (** first round [q] after the last fault/edit round such that
          rounds [q..rounds] all accepted (every alive vertex rendered
          an accepting verdict); [None] if the execution never settled
          — faults ran to the last round, recovery failed, or some
          round in the tail rejected or rendered no verdicts.  On a
          fault-free accepting execution this is [1]. *)
  trace : Trace.t;
  checked : int list array;
      (** per round: vertices whose view was reassembled and re-keyed
          (the dirty set), ascending.  Contains the distance-1 closure
          of the round's fault events.  In full-sweep mode: every alive
          vertex. *)
  reverified : int list array;
      (** per round: vertices where the verifier actually ran (a
          {!Vcache} key miss among [checked]), ascending.  In
          full-sweep mode: every alive vertex. *)
  adopted : int list array;
      (** per round: vertices that re-adopted a recovered certificate,
          ascending; all empty unless [~recover:true] *)
  final_graph : Graph.t;
      (** the committed topology after the last round's edits — the
          instance a from-scratch verification of the final state
          would run on *)
  final_certs : Bitstring.t array;
      (** the certificates stored at the nodes after the last round
          (corruptions and recoveries included) *)
}

val execute :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?plan:Fault.t ->
  ?rounds:int ->
  ?seed:int ->
  ?incremental:bool ->
  ?compiled:bool ->
  ?recover:bool ->
  Scheme.t ->
  Instance.t ->
  Bitstring.t array ->
  result
(** [execute scheme inst certs] runs the protocol for [?rounds]
    (default 1) communication rounds under [?plan] (default
    {!Fault.none}), seeded by [?seed] (default 0).

    Vertices are sharded across the {!Pool} in both the exchange and
    the verification phase of every round ([?pool] to reuse a pool,
    [?jobs] for a private one, as in {!Engine.run_par}).

    [?incremental] (default [true]) enables the verdict cache: after
    round 1, only vertices in the dirty set of the round's fault
    events are re-examined.  [~incremental:false] forces the full
    per-round sweep; results are identical either way.

    [?compiled] (default [true]) runs verdicts through the scheme's
    compiled view checker ({!Vcompile.view_checker}) when it has a
    lowering: per-domain decode caches make repeated rounds and
    broadcast certificates decode once instead of once per view.
    [~compiled:false] — or a scheme without a lowering — uses the
    interpreted verifier; outcomes and traces are identical either
    way.

    [?recover] (default [false]) enables self-healing re-certification
    after detections — see the module preamble.

    [max_bits] measures the stored certificates as of each round (so
    persistent corruption and recovery are reflected, transient wire
    flips are not).  A verifier that raises a scheme-level exception
    is treated as rejecting with the exception text: a vertex whose
    neighbors all crashed (or whose messages were mangled) must never
    take the simulator down.  Fatal exceptions
    ({!Localcert_util.Fatal} — [Out_of_memory], [Stack_overflow],
    [Assert_failure]) are {e not} converted: they indicate a broken
    process, not a detected fault, and propagate to the caller.

    Raises [Invalid_argument] if [rounds < 1], the certificate count
    does not match the instance, a [plan.crashed] vertex id is outside
    [\[0, n)], or a scheduled edit endpoint is outside [\[0, n)] —
    out-of-range ids used to be silent no-ops; they are rejected
    loudly now. *)
