(** Round-based distributed execution of certification schemes.

    The paper's model (Section 2.2 / Appendix A.1) is a distributed
    protocol: every vertex receives its neighbors' certificates and
    decides locally.  {!execute} actually runs that protocol — each
    round, every alive vertex broadcasts its stored certificate, a
    {!Fault} plan intercepts state and messages, each vertex assembles
    a {!Scheme.view} from what it received and runs the verifier.

    Two contracts anchor the simulator:

    - {e Reference equivalence}: under {!Fault.none} with [~rounds:1],
      the final {!Scheme.outcome} is identical to
      [Scheme.run scheme inst certs] — same [accepted], same
      [max_bits], same [rejections] (order and reasons included).
    - {e Seed determinism}: the whole execution — outcome {e and}
      trace, byte for byte — is a function of [(seed, plan, rounds)]
      only, never of [?jobs] or scheduling.  Randomness is dealt from
      {!Localcert_util.Rng.split} streams keyed by (round, vertex).

    Multi-round executions model self-stabilizing re-verification:
    persistent faults (corrupted certificates, crashes) accumulate,
    and {!result.detected_at} reports the first round in which some
    honest vertex rejected.

    {2 Incremental verification}

    By default the runtime does {e not} re-run the verifier at every
    vertex every round.  A radius-1 verdict is a pure function of the
    view, so between rounds it can only change at vertices within
    distance 1 of a fault event (or downstream of a transient fault's
    reversion); {!Vcache} computes that dirty set from the round's
    canonical event list and cached verdicts are reused everywhere
    else.  The mode is {e drop-in exact}: outcomes, [detected_at] and
    the trace are byte-identical to the full sweep
    ([~incremental:false]), and the dirty set is computed sequentially
    so [checked]/[reverified] — and the
    [runtime.vertices_reverified] / [runtime.verdicts_cached] metrics
    counters — are deterministic across job counts.  See DESIGN §5.4. *)

type result = {
  outcome : Scheme.outcome;  (** the final round's outcome *)
  per_round : Scheme.outcome array;  (** outcome of every round, in order *)
  detected_at : int option;
      (** first round (1-based) with a rejecting verdict *)
  trace : Trace.t;
  checked : int list array;
      (** per round: vertices whose view was reassembled and re-keyed
          (the dirty set), ascending.  Contains the distance-1 closure
          of the round's fault events.  In full-sweep mode: every alive
          vertex. *)
  reverified : int list array;
      (** per round: vertices where the verifier actually ran (a
          {!Vcache} key miss among [checked]), ascending.  In
          full-sweep mode: every alive vertex. *)
}

val execute :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?plan:Fault.t ->
  ?rounds:int ->
  ?seed:int ->
  ?incremental:bool ->
  ?compiled:bool ->
  Scheme.t ->
  Instance.t ->
  Bitstring.t array ->
  result
(** [execute scheme inst certs] runs the protocol for [?rounds]
    (default 1) communication rounds under [?plan] (default
    {!Fault.none}), seeded by [?seed] (default 0).

    Vertices are sharded across the {!Pool} in both the exchange and
    the verification phase of every round ([?pool] to reuse a pool,
    [?jobs] for a private one, as in {!Engine.run_par}).

    [?incremental] (default [true]) enables the verdict cache: after
    round 1, only vertices in the dirty set of the round's fault
    events are re-examined.  [~incremental:false] forces the full
    per-round sweep; results are identical either way.

    [?compiled] (default [true]) runs verdicts through the scheme's
    compiled view checker ({!Vcompile.view_checker}) when it has a
    lowering: per-domain decode caches make repeated rounds and
    broadcast certificates decode once instead of once per view.
    [~compiled:false] — or a scheme without a lowering — uses the
    interpreted verifier; outcomes and traces are identical either
    way.

    A round's outcome counts the verdicts of alive, honest vertices
    only — crashed and Byzantine vertices render none.  [max_bits]
    measures the stored certificates as of that round (so persistent
    corruption is reflected, transient wire flips are not).  A
    verifier that raises a scheme-level exception is treated as
    rejecting with the exception text: a vertex whose neighbors all
    crashed (or whose messages were mangled) must never take the
    simulator down.  Fatal exceptions ({!Localcert_util.Fatal} —
    [Out_of_memory], [Stack_overflow], [Assert_failure]) are {e not}
    converted: they indicate a broken process, not a detected fault,
    and propagate to the caller.

    Raises [Invalid_argument] if [rounds < 1] or the certificate count
    does not match the instance. *)
