(** Per-vertex verdict cache and dirty-set propagator for the
    incremental runtime.

    A radius-1 verifier's verdict depends only on the vertex's view,
    and between rounds a view can change only through the fault events
    of the current round — plus the unmarked reversion, one round
    later, of a transient wire fault.  This module turns that
    invariant into a candidate set per round:

    {[ candidates(r) = closure(fault events(r)) ∪ carry(r - 1) ]}

    where the closure follows {!Trace.scope} (vertex-state faults
    dirty the vertex and its neighbors, wire faults dirty the
    receiving inbox, topology edits dirty both endpoints' closed
    neighborhoods in the post-edit overlay) and the carry holds the scopes of the previous
    round's transient events plus every vertex whose {!View_key}
    changed.  Vertices outside the candidate set provably have the
    same view as when their cached verdict was computed, so the
    verdict is reused without reassembling the view.

    The candidate set is computed {e sequentially} from the canonical
    event list, so it — and every count derived from it — is identical
    at every job count.  The per-candidate accessors ({!check},
    {!store}, {!skip}) mutate only the entry of the given vertex and
    may be called concurrently for distinct vertices. *)

type t

val create : int -> t
(** A cold cache for [n] vertices: round 1 makes every vertex a
    candidate and populates the cache. *)

val candidates :
  t -> graph:Graph.Delta.t -> first_round:bool -> Trace.event list -> int list
(** The vertices whose view may have changed this round, ascending.
    With [~first_round:true] that is every vertex (nothing is cached
    yet).  Also resets the per-round change flags; call exactly once
    per round, before the fan-out. *)

val check : t -> int -> View_key.t -> Scheme.verdict option
(** [check t v key] is the cached verdict if [v]'s view is unchanged
    (its stored key equals [key], structurally), [None] if the
    verifier must run. *)

val store : t -> int -> View_key.t -> Scheme.verdict -> unit
(** Record a freshly computed verdict for [v] under [key], marking [v]
    changed (so next round re-checks it once). *)

val skip : t -> int -> unit
(** [v] renders no verdict this round (crashed or Byzantine); clears
    its cache entry. *)

val verdict : t -> int -> Scheme.verdict option
(** The verdict of [v]'s current view: fresh or cached.  [Some] for
    every vertex that was alive at its last candidacy. *)

val update_carry : t -> graph:Graph.Delta.t -> Trace.event list -> unit
(** Compute the carry for the next round from this round's events and
    change flags.  Call exactly once per round, after the fan-out. *)
