type send = { dst : int; payload : Bitstring.t }

(* The Attack.corruptions-style persistent mutation: flip one bit or
   replace the certificate with fresh random bits of the same length.
   Empty certificates have no bits to corrupt and are left alone. *)
let mutate_cert stream cert =
  let len = Bitstring.length cert in
  if len = 0 then cert
  else
    (* intern the replacement so a corruption that recreates an
       existing label still pointer-shares it *)
    Cert_store.intern
      (if Rng.int stream 2 = 0 then Bitstring.flip cert (Rng.int stream len)
       else Rng.bits stream len)

(* One vertex's sender step.  Only reads/writes [node] and only draws
   from [stream]; see the .mli determinism contract.  [active] is
   false past the plan's horizon: every random number is still drawn
   (the stream schedule is part of the trace contract) but no
   rate-based fault fires — Byzantine vertices keep forging, since
   their status is state, not a per-round draw. *)
let sender_step ~plan ~first_round ~active ~crash_mask ~graph ~(node : Node.t)
    ~stream =
  let events = ref [] in
  let push e = events := e :: !events in
  if first_round then begin
    (match crash_mask with
    | Some mask when node.Node.status = Node.Alive && mask.(node.vertex) ->
        node.status <- Node.Crashed;
        push (Trace.Crash { vertex = node.vertex })
    | _ -> ());
    let u_byz = Rng.float stream 1.0 in
    if active && node.status = Node.Alive && u_byz < plan.Fault.byzantine
    then begin
      node.status <- Node.Byzantine;
      push (Trace.Went_byzantine { vertex = node.vertex })
    end
  end;
  let u_crash = Rng.float stream 1.0 in
  if active && node.status <> Node.Crashed && u_crash < plan.Fault.crash
  then begin
    node.status <- Node.Crashed;
    push (Trace.Crash { vertex = node.vertex })
  end;
  let u_corrupt = Rng.float stream 1.0 in
  if active && node.status = Node.Alive && u_corrupt < plan.Fault.corrupt
  then begin
    node.cert <- mutate_cert stream node.cert;
    push (Trace.Corrupt { vertex = node.vertex })
  end;
  let sends = ref [] in
  if node.status <> Node.Crashed then
    Graph.Delta.iter_neighbors graph node.vertex (fun w ->
        let u_drop = Rng.float stream 1.0 in
        let u_flip = Rng.float stream 1.0 in
        let forged = node.status = Node.Byzantine in
        let payload =
          if forged then
            Rng.bits stream (Rng.int stream (plan.Fault.byz_bits + 1))
          else node.cert
        in
        if active && u_drop < plan.Fault.drop then
          push (Trace.Drop { src = node.vertex; dst = w })
        else begin
          let payload =
            if
              active
              && (not forged)
              && u_flip < plan.Fault.flip
              && Bitstring.length payload > 0
            then begin
              let bit = Rng.int stream (Bitstring.length payload) in
              push (Trace.Flip { src = node.vertex; dst = w; bit });
              Bitstring.flip payload bit
            end
            else payload
          in
          let bits = Bitstring.length payload in
          push
            (if forged then Trace.Forge { src = node.vertex; dst = w; bits }
             else Trace.Send { src = node.vertex; dst = w; bits });
          sends := { dst = w; payload } :: !sends
        end);
  (List.rev !events, List.rev !sends)

let chunk_factor = 8

let exchange ~pool ~plan ~first_round ~active ~graph ~nodes ~streams =
  let n = Array.length nodes in
  (* The deterministic crash list becomes a bool mask once, instead of
     a List.mem per vertex (O(n·|crashed|) over the whole round).
     Runtime.execute has already range-checked the ids. *)
  let crash_mask =
    if first_round && plan.Fault.crashed <> [] then begin
      let mask = Array.make n false in
      List.iter (fun v -> mask.(v) <- true) plan.Fault.crashed;
      Some mask
    end
    else None
  in
  let per_vertex = Array.make n ([], []) in
  let chunks = max 1 (min n (Pool.size pool * chunk_factor)) in
  ignore
    (Pool.map_chunks pool ~chunks (fun c ->
         let lo = c * n / chunks and hi = (c + 1) * n / chunks in
         for v = lo to hi - 1 do
           per_vertex.(v) <-
             sender_step ~plan ~first_round ~active ~crash_mask ~graph
               ~node:nodes.(v) ~stream:streams.(v)
         done));
  let inboxes = Array.make n [] in
  Array.iteri
    (fun v (_, sends) ->
      List.iter
        (fun { dst; payload } ->
          inboxes.(dst) <- (nodes.(v).Node.id, payload) :: inboxes.(dst))
        sends)
    per_vertex;
  let events = List.concat_map fst (Array.to_list per_vertex) in
  (events, inboxes)
