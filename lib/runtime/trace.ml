type event =
  | Crash of { vertex : int }
  | Went_byzantine of { vertex : int }
  | Corrupt of { vertex : int }
  | Send of { src : int; dst : int; bits : int }
  | Drop of { src : int; dst : int }
  | Flip of { src : int; dst : int; bit : int }
  | Forge of { src : int; dst : int; bits : int }
  | Edge_added of { u : int; v : int }
  | Edge_removed of { u : int; v : int }
  | Recover of { vertex : int }
  | Verdict of { vertex : int; accepted : bool; reason : string }

type round_log = {
  round : int;
  events : event list;
  wire_bits : int;
  rejections : (int * string) list;
  verdicts_rendered : int;
}

type t = {
  scheme : string;
  n : int;
  seed : int;
  plan : string;
  rounds : round_log list;
}

type metrics = {
  rounds : int;
  detected_at : int option;
  first_corruption : int option;
  messages_sent : int;
  messages_dropped : int;
  messages_flipped : int;
  messages_forged : int;
  certs_corrupted : int;
  crashed : int;
  byzantine : int;
  wire_bits : int;
  rejecting_verdicts : int;
  edges_added : int;
  edges_removed : int;
  certs_recovered : int;
  last_fault : int option;
}

let is_fault = function
  | Corrupt _ | Drop _ | Flip _ | Forge _ | Crash _ | Went_byzantine _
  | Edge_added _ | Edge_removed _ ->
      true
  | Send _ | Verdict _ | Recover _ -> false

(* Which radius-1 views a fault event can change — the soundness basis
   of the runtime's incremental dirty set (DESIGN §5.4).  Vertex-state
   faults change the vertex's own view and (through its broadcast or
   silence) every neighbor's inbox; wire faults change exactly the
   receiving inbox; honest sends and verdicts change no view at all. *)
type scope =
  | Self_and_neighbors of int
  | Inbox of int
  | Endpoints of int * int
  | Pure

let scope = function
  | Crash { vertex } | Went_byzantine { vertex } | Corrupt { vertex }
  | Recover { vertex } ->
      Self_and_neighbors vertex
  | Drop { dst; _ } | Flip { dst; _ } | Forge { dst; _ } -> Inbox dst
  | Edge_added { u; v } | Edge_removed { u; v } -> Endpoints (u, v)
  | Send _ | Verdict _ -> Pure

(* Transient faults perturb one round's messages and revert on their
   own in the next round (the dropped or flipped message is re-sent
   honestly, the Byzantine sender forges afresh), so the views they
   touched change again one round later {e without} any fault event
   marking the reversion.  Persistent faults (crash, Byzantine status,
   stored-certificate corruption) move the state once and then
   re-broadcast it unchanged. *)
let is_transient = function
  | Drop _ | Flip _ | Forge _ -> true
  | Crash _ | Went_byzantine _ | Corrupt _ | Edge_added _ | Edge_removed _
  | Recover _ | Send _ | Verdict _ ->
      false

let metrics (t : t) =
  let m =
    ref
      {
        rounds = List.length t.rounds;
        detected_at = None;
        first_corruption = None;
        messages_sent = 0;
        messages_dropped = 0;
        messages_flipped = 0;
        messages_forged = 0;
        certs_corrupted = 0;
        crashed = 0;
        byzantine = 0;
        wire_bits = 0;
        rejecting_verdicts = 0;
        edges_added = 0;
        edges_removed = 0;
        certs_recovered = 0;
        last_fault = None;
      }
  in
  List.iter
    (fun r ->
      let acc = !m in
      let acc =
        if r.rejections <> [] && acc.detected_at = None then
          { acc with detected_at = Some r.round }
        else acc
      in
      let acc =
        if List.exists is_fault r.events then
          {
            acc with
            first_corruption =
              (if acc.first_corruption = None then Some r.round
               else acc.first_corruption);
            last_fault = Some r.round;
          }
        else acc
      in
      m :=
        List.fold_left
          (fun acc e ->
            match e with
            | Send _ -> { acc with messages_sent = acc.messages_sent + 1 }
            | Drop _ -> { acc with messages_dropped = acc.messages_dropped + 1 }
            | Flip _ ->
                (* a flipped message is still delivered: count both *)
                {
                  acc with
                  messages_flipped = acc.messages_flipped + 1;
                }
            | Forge _ -> { acc with messages_forged = acc.messages_forged + 1 }
            | Corrupt _ ->
                { acc with certs_corrupted = acc.certs_corrupted + 1 }
            | Crash _ -> { acc with crashed = acc.crashed + 1 }
            | Went_byzantine _ -> { acc with byzantine = acc.byzantine + 1 }
            | Edge_added _ -> { acc with edges_added = acc.edges_added + 1 }
            | Edge_removed _ ->
                { acc with edges_removed = acc.edges_removed + 1 }
            | Recover _ ->
                { acc with certs_recovered = acc.certs_recovered + 1 }
            | Verdict { accepted = false; _ } ->
                { acc with rejecting_verdicts = acc.rejecting_verdicts + 1 }
            | Verdict _ -> acc)
          { acc with wire_bits = acc.wire_bits + r.wire_bits }
          r.events)
    t.rounds;
  !m

(* Rounds from first fault to first rejection, inclusive.  [None] when
   nothing was detected, nothing was corrupted, or the first rejection
   {e precedes} the first fault (e.g. certificates that were invalid
   from round 1 while the fault plan only fired later) — a
   "detection latency" of zero or less is not a latency.  Callers used
   to compute [d - c + 1] inline and could produce those non-positive
   values on such traces; aggregating here keeps the edge cases in one
   place.  On a zero-round trace both options are [None], so this is
   total. *)
let detection_latency (m : metrics) =
  match (m.detected_at, m.first_corruption) with
  | Some d, Some c when d >= c -> Some (d - c + 1)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let event_json b = function
  | Crash { vertex } ->
      Printf.bprintf b {|{"type":"crash","vertex":%d}|} vertex
  | Went_byzantine { vertex } ->
      Printf.bprintf b {|{"type":"byzantine","vertex":%d}|} vertex
  | Corrupt { vertex } ->
      Printf.bprintf b {|{"type":"corrupt","vertex":%d}|} vertex
  | Send { src; dst; bits } ->
      Printf.bprintf b {|{"type":"send","src":%d,"dst":%d,"bits":%d}|} src dst
        bits
  | Drop { src; dst } ->
      Printf.bprintf b {|{"type":"drop","src":%d,"dst":%d}|} src dst
  | Flip { src; dst; bit } ->
      Printf.bprintf b {|{"type":"flip","src":%d,"dst":%d,"bit":%d}|} src dst
        bit
  | Forge { src; dst; bits } ->
      Printf.bprintf b {|{"type":"forge","src":%d,"dst":%d,"bits":%d}|} src
        dst bits
  | Edge_added { u; v } ->
      Printf.bprintf b {|{"type":"edge_add","u":%d,"v":%d}|} u v
  | Edge_removed { u; v } ->
      Printf.bprintf b {|{"type":"edge_del","u":%d,"v":%d}|} u v
  | Recover { vertex } ->
      Printf.bprintf b {|{"type":"recover","vertex":%d}|} vertex
  | Verdict { vertex; accepted; reason } ->
      Printf.bprintf b {|{"type":"verdict","vertex":%d,"accepted":%b|} vertex
        accepted;
      if not accepted then begin
        Buffer.add_string b {|,"reason":"|};
        escape b reason;
        Buffer.add_char b '"'
      end;
      Buffer.add_char b '}'

let sep_iter b f = function
  | [] -> ()
  | x :: rest ->
      f b x;
      List.iter
        (fun x ->
          Buffer.add_char b ',';
          f b x)
        rest

let round_json b r =
  Printf.bprintf b {|{"round":%d,"wire_bits":%d,"verdicts_rendered":%d,"rejections":[|}
    r.round r.wire_bits r.verdicts_rendered;
  sep_iter b
    (fun b (v, reason) ->
      Printf.bprintf b {|{"vertex":%d,"reason":"|} v;
      escape b reason;
      Buffer.add_string b {|"}|})
    r.rejections;
  Buffer.add_string b {|],"events":[|};
  sep_iter b event_json r.events;
  Buffer.add_string b "]}"

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b {|{"scheme":"|};
  escape b t.scheme;
  Printf.bprintf b {|","n":%d,"seed":%d,"plan":"|} t.n t.seed;
  escape b t.plan;
  Buffer.add_string b {|","rounds":[|};
  sep_iter b round_json t.rounds;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Human-readable summary                                              *)
(* ------------------------------------------------------------------ *)

let pp_summary ppf t =
  Format.fprintf ppf "scheme %s, n=%d, seed=%d, plan=%s@." t.scheme t.n t.seed
    t.plan;
  List.iter
    (fun r ->
      let count f = List.length (List.filter f r.events) in
      let edge_edits =
        count (function Edge_added _ | Edge_removed _ -> true | _ -> false)
      in
      let recovered = count (function Recover _ -> true | _ -> false) in
      Format.fprintf ppf
        "round %2d: %4d sent (%d bits), %d dropped, %d flipped, %d forged, %d \
         corrupted, %d crashed; %d verdicts, %d rejecting"
        r.round
        (count (function Send _ -> true | _ -> false))
        r.wire_bits
        (count (function Drop _ -> true | _ -> false))
        (count (function Flip _ -> true | _ -> false))
        (count (function Forge _ -> true | _ -> false))
        (count (function Corrupt _ -> true | _ -> false))
        (count (function Crash _ -> true | _ -> false))
        r.verdicts_rendered
        (List.length r.rejections);
      if edge_edits > 0 then
        Format.fprintf ppf "; %d edge edit%s" edge_edits
          (if edge_edits = 1 then "" else "s");
      if recovered > 0 then Format.fprintf ppf "; %d recovered" recovered;
      Format.fprintf ppf "@.")
    t.rounds;
  let m = metrics t in
  (match (m.detected_at, m.first_corruption) with
  | Some d, Some c -> (
      match detection_latency m with
      | Some l ->
          Format.fprintf ppf
            "detection: first rejection in round %d (first fault in round %d, \
             latency %d round%s)@."
            d c l
            (if l = 1 then "" else "s")
      | None ->
          Format.fprintf ppf
            "detection: first rejection in round %d, before the first fault \
             (round %d)@."
            d c)
  | Some d, None ->
      Format.fprintf ppf "detection: first rejection in round %d@." d
  | None, Some c ->
      Format.fprintf ppf
        "detection: none (first fault in round %d went undetected)@." c
  | None, None -> Format.fprintf ppf "detection: nothing to detect@.");
  Format.fprintf ppf
    "totals: %d rounds, %d bits on the wire, %d corrupted certs, %d crashed, \
     %d byzantine, %d edges added, %d edges removed, %d recovered certs, %d \
     rejecting verdicts@."
    m.rounds m.wire_bits m.certs_corrupted m.crashed m.byzantine m.edges_added
    m.edges_removed m.certs_recovered m.rejecting_verdicts
