(** Per-vertex protocol state of the round-based runtime.

    A node owns the mutable state the simulator evolves across rounds:
    its stored certificate (mutated by persistent corruption faults)
    and its liveness status.  Everything else — identifier, label,
    topology — is read from the immutable {!Instance.t}. *)

type status =
  | Alive
  | Crashed  (** permanently silent; renders no verdicts *)
  | Byzantine  (** sends forged per-neighbor messages; renders no verdicts *)

type t = {
  vertex : int;
  id : int;  (** the instance identifier, [Instance.id_of] *)
  mutable cert : Bitstring.t;
  mutable status : status;
}

val boot : Instance.t -> Bitstring.t array -> t array
(** Initial node array: every vertex alive, holding its assigned
    certificate.  Raises [Invalid_argument] if the certificate count
    does not match the instance. *)

val view : Instance.t -> t -> inbox:(int * Bitstring.t) list -> Scheme.view
(** The {!Scheme.view} a node assembles from the messages it received
    this round: [(sender id, payload)] pairs, sorted by id.  With a
    full fault-free inbox this is exactly {!Scheme.view_of}; a silent
    (crashed or dropped) neighbor is simply absent. *)
