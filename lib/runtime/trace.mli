(** Structured execution traces of the round-based runtime.

    A trace is the full, deterministic event log of one
    {!Runtime.execute}: per round, every message sent, dropped,
    corrupted on the wire or forged, every state fault (crash,
    Byzantine conversion, stored-certificate corruption) and every
    verdict rendered.  Event order is canonical — sender events in
    ascending vertex order, then verdicts in ascending vertex order —
    so the same seed produces a byte-identical {!to_json} rendering at
    every job count.

    {!metrics} folds a trace into the aggregate figures the bench
    sweep reports: detection latency in rounds, corruption/detection
    counts, and total communication bits. *)

type event =
  | Crash of { vertex : int }  (** the vertex halted this round *)
  | Went_byzantine of { vertex : int }  (** round-1 adversary draw *)
  | Corrupt of { vertex : int }  (** stored certificate mutated *)
  | Send of { src : int; dst : int; bits : int }  (** delivered honestly *)
  | Drop of { src : int; dst : int }  (** lost on the wire *)
  | Flip of { src : int; dst : int; bit : int }
      (** delivered with bit [bit] inverted *)
  | Forge of { src : int; dst : int; bits : int }
      (** Byzantine sender, arbitrary payload delivered *)
  | Edge_added of { u : int; v : int }
      (** topology churn: edge [u–v] ([u < v]) appeared this round *)
  | Edge_removed of { u : int; v : int }
      (** topology churn: edge [u–v] ([u < v]) vanished this round *)
  | Recover of { vertex : int }
      (** self-healing: the vertex re-adopted a freshly proved
          certificate (not a fault) *)
  | Verdict of { vertex : int; accepted : bool; reason : string }
      (** verifier output ([reason] is [""] on acceptance) *)

type round_log = {
  round : int;  (** 1-based *)
  events : event list;  (** canonical order, see above *)
  wire_bits : int;  (** delivered payload bits this round *)
  rejections : (int * string) list;  (** rejecting vertices, ascending *)
  verdicts_rendered : int;
      (** how many alive honest vertices actually rendered a verdict —
          [0] means the round's acceptance was vacuously undecidable
          (every vertex crashed or Byzantine), which {!Runtime} treats
          as {e not} accepted *)
}

type t = {
  scheme : string;
  n : int;
  seed : int;
  plan : string;
  rounds : round_log list;  (** ascending round order *)
}

type metrics = {
  rounds : int;
  detected_at : int option;  (** first round with a rejection, 1-based *)
  first_corruption : int option;
      (** first round with any fault event
          (corrupt/flip/drop/forge/crash/edge edit) *)
  messages_sent : int;  (** delivered, honest *)
  messages_dropped : int;
  messages_flipped : int;
  messages_forged : int;
  certs_corrupted : int;
  crashed : int;
  byzantine : int;
  wire_bits : int;  (** delivered payload bits over all rounds *)
  rejecting_verdicts : int;
  edges_added : int;  (** topology churn: edges that appeared *)
  edges_removed : int;  (** topology churn: edges that vanished *)
  certs_recovered : int;  (** certificates re-adopted by self-healing *)
  last_fault : int option;
      (** last round with any fault event (edits included, recoveries
          not) — the baseline for rounds-to-quiescence *)
}

(** Which radius-1 views an event can change (see DESIGN §5.4): a
    vertex-state fault (crash, Byzantine conversion, corruption)
    changes the vertex's own view and every neighbor's inbox; a wire
    fault (drop, flip, forge) changes exactly the receiving vertex's
    inbox; a topology edit changes both endpoints' degrees and
    broadcast targets, hence both endpoints' closed neighborhoods (in
    the post-edit topology); a recovery changes the vertex's stored
    certificate exactly like a corruption does; honest sends and
    verdicts change nothing.  The runtime's incremental dirty set is
    the union of these scopes, closed over neighborhoods for the
    vertex-state and endpoint cases. *)
type scope =
  | Self_and_neighbors of int
  | Inbox of int
  | Endpoints of int * int
  | Pure

val scope : event -> scope

val is_fault : event -> bool
(** Whether the event perturbs the execution: state faults, wire
    faults and topology edits are faults; honest sends, verdicts and
    recoveries are not.  The last round containing one is the baseline
    for rounds-to-quiescence. *)

val is_transient : event -> bool
(** [true] for the wire faults (drop, flip, forge) whose effect on a
    view reverts one round later without a marking event — the reason
    the incremental dirty set carries them over one extra round. *)

val metrics : t -> metrics

val detection_latency : metrics -> int option
(** Rounds from the first fault to the first rejection, inclusive
    (so same-round detection has latency 1).  [None] when nothing was
    detected, nothing was corrupted — including the trivial zero-round
    trace — or the first rejection precedes the first fault (invalid
    certificates rejected before the fault plan fired); a non-positive
    "latency" is never reported. *)

val to_json : t -> string
(** Machine-readable rendering.  Deterministic: the same trace value
    always yields the same bytes. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per round plus the aggregate metrics — the CLI's default
    [simulate] output. *)
