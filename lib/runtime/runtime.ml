type result = {
  outcome : Scheme.outcome;
  per_round : Scheme.outcome array;
  detected_at : int option;
  quiesced_at : int option;
  trace : Trace.t;
  checked : int list array;
  reverified : int list array;
  adopted : int list array;
  final_graph : Graph.t;
  final_certs : Bitstring.t array;
}

let with_pool_arg ?pool ?jobs f =
  match pool with Some p -> f p | None -> Pool.with_pool ?jobs f

let chunk_factor = 8

(* Contain scheme-level failures as rejections — a vertex whose whole
   neighborhood crashed or whose certificate was mangled must never
   take the simulator down — but let fatal/programming-error
   exceptions (OOM, stack overflow, tripped assertions) escape: those
   mean the process is broken, not that a fault was detected.  [check]
   is either the scheme's interpreted verifier or its compiled view
   checker (Vcompile.view_checker) — the latter already falls back to
   the interpreted verifier on a non-fatal failure of its own, so this
   outer containment produces the same rejection text either way. *)
let run_verifier check view =
  match check view with
  | verdict -> verdict
  | exception e when not (Fatal.is_fatal e) ->
      Scheme.Reject ("verifier raised: " ^ Printexc.to_string e)

(* Full-sweep verification: every alive honest vertex assembles its
   view from the round's inbox and runs the verifier.  Verdicts come
   back in ascending vertex order (per-chunk downto + cons, chunks
   ascending), matching Scheme.run's rejection order. *)
let verify_round ~pool ~inst ~nodes ~inboxes check =
  let n = Array.length nodes in
  let chunks = max 1 (min n (Pool.size pool * chunk_factor)) in
  let per_chunk =
    Pool.map_chunks pool ~chunks (fun c ->
        let lo = c * n / chunks and hi = (c + 1) * n / chunks in
        let out = ref [] in
        for v = hi - 1 downto lo do
          let node = nodes.(v) in
          if node.Node.status = Node.Alive then begin
            let view = Node.view inst node ~inbox:inboxes.(v) in
            out := (v, run_verifier check view) :: !out
          end
        done;
        !out)
  in
  List.concat (Array.to_list per_chunk)

(* Incremental verification: the dirty-set propagator (Vcache) names
   the candidates whose view may have changed; only those reassemble a
   view, and only key misses among them run the verifier.  Everything
   else reuses its cached verdict, so the assembled verdict list — and
   hence outcome, rejections and trace — is identical to the full
   sweep's, per-round and byte for byte.  [graph] is the current
   topology overlay: scopes of this round's events (topology edits
   included) are closed over the post-edit neighborhoods. *)
let verify_round_incremental ~pool ~inst ~graph ~nodes ~inboxes ~cache
    ~first_round ~events check =
  let cands =
    Array.of_list (Vcache.candidates cache ~graph ~first_round events)
  in
  let k = Array.length cands in
  let ran = Array.make k false in
  if k > 0 then begin
    let chunks = max 1 (min k (Pool.size pool * chunk_factor)) in
    ignore
      (Pool.map_chunks pool ~chunks (fun c ->
           let lo = c * k / chunks and hi = (c + 1) * k / chunks in
           for i = lo to hi - 1 do
             let v = cands.(i) in
             let node = nodes.(v) in
             if node.Node.status <> Node.Alive then Vcache.skip cache v
             else begin
               let view = Node.view inst node ~inbox:inboxes.(v) in
               let key =
                 View_key.make ~cert:view.Scheme.cert ~nbrs:view.Scheme.nbrs
               in
               match Vcache.check cache v key with
               | Some _ -> ()
               | None ->
                   Vcache.store cache v key (run_verifier check view);
                   ran.(i) <- true
             end
           done));
  end;
  let verdicts = ref [] in
  let n = Array.length nodes in
  for v = n - 1 downto 0 do
    if nodes.(v).Node.status = Node.Alive then
      match Vcache.verdict cache v with
      | Some verdict -> verdicts := (v, verdict) :: !verdicts
      | None -> assert false (* alive ⇒ verified in round 1 *)
  done;
  Vcache.update_carry cache ~graph events;
  let reverified = ref [] in
  for i = k - 1 downto 0 do
    if ran.(i) then reverified := cands.(i) :: !reverified
  done;
  (!verdicts, Array.to_list cands, !reverified)

(* Everything the runtime records is deterministic given the seed: the
   fault plan draws from Rng streams keyed by (round, vertex) — plus
   one dedicated per-round topology stream, consumed sequentially —
   so event lists, and hence these counts, including the incremental
   layer's candidate and re-verification counts, are identical across
   job counts. *)
let fault_counter = function
  | Trace.Crash _ -> Some "runtime.fault.crash"
  | Trace.Went_byzantine _ -> Some "runtime.fault.byzantine"
  | Trace.Corrupt _ -> Some "runtime.fault.corrupt"
  | Trace.Drop _ -> Some "runtime.fault.drop"
  | Trace.Flip _ -> Some "runtime.fault.flip"
  | Trace.Forge _ -> Some "runtime.fault.forge"
  | Trace.Edge_added _ -> Some "runtime.churn.edge_added"
  | Trace.Edge_removed _ -> Some "runtime.churn.edge_removed"
  | Trace.Send _ | Trace.Verdict _ | Trace.Recover _ -> None

let record_round ~wire_bits ~events ~rejections ~reverified ~cached =
  if Metrics.is_enabled () then begin
    Metrics.incr (Metrics.counter "runtime.rounds");
    Metrics.observe (Metrics.histogram "runtime.round_wire_bits") wire_bits;
    Metrics.add
      (Metrics.counter "runtime.rejections")
      (List.length rejections);
    Metrics.add (Metrics.counter "runtime.vertices_reverified") reverified;
    Metrics.add (Metrics.counter "runtime.verdicts_cached") cached;
    List.iter
      (fun e ->
        match fault_counter e with
        | Some name -> Metrics.incr (Metrics.counter name)
        | None -> (
            match e with
            | Trace.Send _ ->
                Metrics.incr (Metrics.counter "runtime.messages_sent")
            | Trace.Recover _ ->
                Metrics.incr (Metrics.counter "runtime.certs_recovered")
            | _ -> ()))
      events
  end

(* Detection latency in rounds, small and linear-ish: simulations run
   single-digit round counts, where power-of-two buckets would lump
   everything into two cells. *)
let latency_bounds = [| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32 |]

let record_trace trace =
  if Metrics.is_enabled () then
    match Trace.detection_latency (Trace.metrics trace) with
    | Some l ->
        Metrics.observe
          (Metrics.histogram ~bounds:latency_bounds
             "runtime.detection_latency_rounds")
          l
    | None -> ()

let validate_plan ~n (plan : Fault.t) =
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf
             "Runtime.execute: crashed vertex %d out of [0,%d) for this \
              instance"
             v n))
    plan.Fault.crashed;
  List.iter
    (fun (e : Fault.edit) ->
      if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n then
        invalid_arg
          (Printf.sprintf
             "Runtime.execute: edit %d-%d out of [0,%d) for this instance" e.u
             e.v n))
    plan.Fault.edits

let execute ?pool ?jobs ?(plan = Fault.none) ?(rounds = 1) ?(seed = 0)
    ?(incremental = true) ?(compiled = true) ?(recover = false) scheme inst
    certs =
  if rounds < 1 then invalid_arg "Runtime.execute: rounds must be >= 1";
  if Array.length certs <> Instance.n inst then
    invalid_arg "Runtime.execute: certificate count does not match the instance";
  validate_plan ~n:(Instance.n inst) plan;
  with_pool_arg ?pool ?jobs (fun pool ->
      Span.with_ "runtime.execute" @@ fun () ->
      (* Inbox views carry per-delivery wire copies, so the per-domain
         decode-cache checker is the applicable compiled form; [None]
         (no lowering, or compilation off) keeps the interpreted
         verifier.  Verdicts are identical either way. *)
      let check =
        match if compiled then Vcompile.view_checker scheme else None with
        | Some fast -> fast
        | None -> scheme.Scheme.verifier
      in
      let nodes = Node.boot inst certs in
      let n = Array.length nodes in
      let cache = if incremental then Some (Vcache.create n) else None in
      let rng = Rng.make seed in
      let round_streams = Rng.split rng rounds in
      let delta = Graph.Delta.create inst.Instance.graph in
      (* Committed-CSR cache: recovery and the final state need a clean
         CSR; rebuild only when edits happened since the last commit. *)
      let edit_ops = ref 0 in
      let committed = ref inst.Instance.graph in
      let committed_ops = ref 0 in
      let commit_current () =
        if !committed_ops <> !edit_ops then begin
          committed := Graph.Delta.commit delta;
          committed_ops := !edit_ops
        end;
        !committed
      in
      (* Self-healing state.  [pending_dirty] accumulates suspect seeds
         (edit endpoints, rejecting vertices) since the last recovery;
         a recovery is attempted when the previous round rejected and
         something actually happened since the last attempt (otherwise
         re-proving would produce the same certificates again — e.g.
         rejections that persist because their cause is a crashed
         neighbor no prover can heal). *)
      let pending_dirty = ref [] in
      let need_recovery = ref false in
      let fault_events_total = ref 0 in
      let attempted_at = ref (-1) in
      let logs = ref [] in
      let outcomes = ref [] in
      let checked = Array.make rounds [] in
      let reverified = Array.make rounds [] in
      let adopted = Array.make rounds [] in
      for r = 1 to rounds do
        let active = r <= plan.Fault.horizon in
        let streams = Rng.split round_streams.(r - 1) (n + 1) in
        (* 1. Recovery: respond to the previous round's detection on
           the topology as committed at the start of this round. *)
        let recover_events =
          if recover && !need_recovery && !fault_events_total > !attempted_at
          then begin
            attempted_at := !fault_events_total;
            need_recovery := false;
            let g = commit_current () in
            let inst_now =
              Instance.make ~labels:inst.Instance.labels
                ~ids:inst.Instance.ids ~id_bits:inst.Instance.id_bits g
            in
            let old = Array.map (fun nd -> nd.Node.cert) nodes in
            let seeds = List.sort_uniq Int.compare !pending_dirty in
            match Recert.recertify scheme inst_now ~dirty:seeds ~old with
            | Some o ->
                pending_dirty := [];
                let adopters =
                  List.filter
                    (fun v -> nodes.(v).Node.status = Node.Alive)
                    o.Recert.changed
                in
                List.iter
                  (fun v -> nodes.(v).Node.cert <- o.Recert.certs.(v))
                  adopters;
                adopted.(r - 1) <- adopters;
                if Tracer.is_enabled () && adopters <> [] then
                  Tracer.instant
                    ~args:
                      [
                        ("round", r);
                        ("adopted", List.length adopters);
                        ("scoped", Bool.to_int o.Recert.scoped);
                      ]
                    "runtime.recovery";
                List.map (fun v -> Trace.Recover { vertex = v }) adopters
            | None ->
                (* no-instance: nothing to adopt, and pointless to
                   retry until the topology changes again *)
                []
          end
          else begin
            need_recovery := false;
            []
          end
        in
        (* 2. Topology edits: the deterministic schedule, then random
           churn, drawn sequentially from the round's dedicated
           topology stream (jobs-invariant by construction). *)
        let topo_events = ref [] in
        let apply_edit ~add u v =
          let changed =
            if add then Graph.Delta.add_edge delta u v
            else Graph.Delta.remove_edge delta u v
          in
          if changed then begin
            incr edit_ops;
            let lo = min u v and hi = max u v in
            pending_dirty := lo :: hi :: !pending_dirty;
            topo_events :=
              (if add then Trace.Edge_added { u = lo; v = hi }
               else Trace.Edge_removed { u = lo; v = hi })
              :: !topo_events
          end
        in
        List.iter
          (fun (e : Fault.edit) ->
            if e.round = r then apply_edit ~add:e.add e.u e.v)
          plan.Fault.edits;
        if active && (plan.Fault.deledge > 0. || plan.Fault.addedge > 0.)
        then begin
          let tstream = streams.(n) in
          for v = 0 to n - 1 do
            if
              plan.Fault.deledge > 0.
              && Rng.float tstream 1.0 < plan.Fault.deledge
            then begin
              let d = Graph.Delta.degree delta v in
              if d > 0 then begin
                let target = Rng.int tstream d in
                let w = ref (-1) in
                let i = ref 0 in
                Graph.Delta.iter_neighbors delta v (fun x ->
                    if !i = target then w := x;
                    incr i);
                apply_edit ~add:false v !w
              end
            end;
            if
              plan.Fault.addedge > 0. && n > 1
              && Rng.float tstream 1.0 < plan.Fault.addedge
            then begin
              (* bounded retries: near-clique vertices may fail to
                 find a non-neighbor, and that is fine *)
              let rec attempt k =
                if k > 0 then begin
                  let w = Rng.int tstream (n - 1) in
                  let w = if w >= v then w + 1 else w in
                  if Graph.Delta.mem_edge delta v w then attempt (k - 1)
                  else apply_edit ~add:true v w
                end
              in
              attempt 8
            end
          done
        end;
        let pre_events = recover_events @ List.rev !topo_events in
        (* 3. Exchange on the current overlay; 4. verify. *)
        let net_events, inboxes =
          Network.exchange ~pool ~plan ~first_round:(r = 1) ~active
            ~graph:delta ~nodes ~streams
        in
        let events = pre_events @ net_events in
        let verdicts, round_checked, round_reverified =
          match cache with
          | Some cache ->
              verify_round_incremental ~pool ~inst ~graph:delta ~nodes
                ~inboxes ~cache ~first_round:(r = 1) ~events check
          | None ->
              let verdicts = verify_round ~pool ~inst ~nodes ~inboxes check in
              let alive = List.map fst verdicts in
              (verdicts, alive, alive)
        in
        checked.(r - 1) <- round_checked;
        reverified.(r - 1) <- round_reverified;
        let rejections =
          List.filter_map
            (function
              | v, Scheme.Reject reason -> Some (v, reason)
              | _, Scheme.Accept -> None)
            verdicts
        in
        let verdicts_rendered = List.length verdicts in
        let verdict_events =
          List.map
            (fun (v, verdict) ->
              match verdict with
              | Scheme.Accept ->
                  Trace.Verdict { vertex = v; accepted = true; reason = "" }
              | Scheme.Reject reason ->
                  Trace.Verdict { vertex = v; accepted = false; reason })
            verdicts
        in
        let max_bits =
          Array.fold_left
            (fun acc (nd : Node.t) -> max acc (Bitstring.length nd.Node.cert))
            0 nodes
        in
        let wire_bits =
          List.fold_left
            (fun acc e ->
              match e with
              | Trace.Send { bits; _ } | Trace.Forge { bits; _ } -> acc + bits
              | _ -> acc)
            0 events
        in
        let round_faults =
          List.length (List.filter (fun e -> fault_counter e <> None) events)
        in
        fault_events_total := !fault_events_total + round_faults;
        if rejections <> [] then begin
          need_recovery := true;
          List.iter
            (fun (v, _) -> pending_dirty := v :: !pending_dirty)
            rejections
        end;
        record_round ~wire_bits ~events ~rejections
          ~reverified:(List.length round_reverified)
          ~cached:(verdicts_rendered - List.length round_reverified);
        if Tracer.is_enabled () then begin
          Tracer.instant
            ~args:
              [
                ("round", r);
                ("wire_bits", wire_bits);
                ("rejections", List.length rejections);
              ]
            "runtime.round";
          if round_faults > 0 then
            Tracer.instant
              ~args:[ ("round", r); ("count", round_faults) ]
              "runtime.fault"
        end;
        logs :=
          {
            Trace.round = r;
            events = events @ verdict_events;
            wire_bits;
            rejections;
            verdicts_rendered;
          }
          :: !logs;
        (* Vacuous acceptance is not acceptance: a round in which no
           vertex rendered a verdict (everyone crashed or Byzantine)
           did not certify anything. *)
        outcomes :=
          {
            Scheme.accepted = rejections = [] && verdicts_rendered > 0;
            rejections;
            max_bits;
          }
          :: !outcomes
      done;
      let per_round = Array.of_list (List.rev !outcomes) in
      let round_logs = List.rev !logs in
      (* Detection is an explicit rejecting verdict — a zero-verdict
         round is neither acceptance nor detection. *)
      let detected_at =
        let found = ref None in
        Array.iteri
          (fun i (o : Scheme.outcome) ->
            if !found = None && o.Scheme.rejections <> [] then
              found := Some (i + 1))
          per_round;
        !found
      in
      let quiesced_at =
        let last_fault =
          List.fold_left
            (fun acc (log : Trace.round_log) ->
              if List.exists Trace.is_fault log.Trace.events then
                Some log.Trace.round
              else acc)
            None round_logs
        in
        let lo = match last_fault with None -> 1 | Some l -> l + 1 in
        let first_stable = ref (rounds + 1) in
        (try
           for i = rounds - 1 downto 0 do
             if per_round.(i).Scheme.accepted then first_stable := i + 1
             else raise Exit
           done
         with Exit -> ());
        let q = max lo !first_stable in
        if q <= rounds then Some q else None
      in
      let trace =
        {
          Trace.scheme = scheme.Scheme.name;
          n;
          seed;
          plan = Fault.to_string plan;
          rounds = round_logs;
        }
      in
      record_trace trace;
      (match detected_at with
      | Some r when Tracer.is_enabled () ->
          Tracer.instant ~args:[ ("round", r) ] "runtime.detected"
      | _ -> ());
      (match quiesced_at with
      | Some r when Tracer.is_enabled () ->
          Tracer.instant ~args:[ ("round", r) ] "runtime.quiesced"
      | _ -> ());
      Logger.debug
        ~fields:
          [
            ("scheme", scheme.Scheme.name);
            ("rounds", string_of_int rounds);
            ("incremental", string_of_bool incremental);
            ("recover", string_of_bool recover);
            ( "detected_at",
              match detected_at with
              | None -> "never"
              | Some r -> string_of_int r );
            ( "quiesced_at",
              match quiesced_at with
              | None -> "never"
              | Some r -> string_of_int r );
          ]
        "runtime execute done";
      {
        outcome = per_round.(rounds - 1);
        per_round;
        detected_at;
        quiesced_at;
        trace;
        checked;
        reverified;
        adopted;
        final_graph = commit_current ();
        final_certs = Array.map (fun nd -> nd.Node.cert) nodes;
      })
