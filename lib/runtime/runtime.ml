type result = {
  outcome : Scheme.outcome;
  per_round : Scheme.outcome array;
  detected_at : int option;
  trace : Trace.t;
  checked : int list array;
  reverified : int list array;
}

let with_pool_arg ?pool ?jobs f =
  match pool with Some p -> f p | None -> Pool.with_pool ?jobs f

let chunk_factor = 8

(* Contain scheme-level failures as rejections — a vertex whose whole
   neighborhood crashed or whose certificate was mangled must never
   take the simulator down — but let fatal/programming-error
   exceptions (OOM, stack overflow, tripped assertions) escape: those
   mean the process is broken, not that a fault was detected.  [check]
   is either the scheme's interpreted verifier or its compiled view
   checker (Vcompile.view_checker) — the latter already falls back to
   the interpreted verifier on a non-fatal failure of its own, so this
   outer containment produces the same rejection text either way. *)
let run_verifier check view =
  match check view with
  | verdict -> verdict
  | exception e when not (Fatal.is_fatal e) ->
      Scheme.Reject ("verifier raised: " ^ Printexc.to_string e)

(* Full-sweep verification: every alive honest vertex assembles its
   view from the round's inbox and runs the verifier.  Verdicts come
   back in ascending vertex order (per-chunk downto + cons, chunks
   ascending), matching Scheme.run's rejection order. *)
let verify_round ~pool ~inst ~nodes ~inboxes check =
  let n = Array.length nodes in
  let chunks = max 1 (min n (Pool.size pool * chunk_factor)) in
  let per_chunk =
    Pool.map_chunks pool ~chunks (fun c ->
        let lo = c * n / chunks and hi = (c + 1) * n / chunks in
        let out = ref [] in
        for v = hi - 1 downto lo do
          let node = nodes.(v) in
          if node.Node.status = Node.Alive then begin
            let view = Node.view inst node ~inbox:inboxes.(v) in
            out := (v, run_verifier check view) :: !out
          end
        done;
        !out)
  in
  List.concat (Array.to_list per_chunk)

(* Incremental verification: the dirty-set propagator (Vcache) names
   the candidates whose view may have changed; only those reassemble a
   view, and only key misses among them run the verifier.  Everything
   else reuses its cached verdict, so the assembled verdict list — and
   hence outcome, rejections and trace — is identical to the full
   sweep's, per-round and byte for byte. *)
let verify_round_incremental ~pool ~inst ~nodes ~inboxes ~cache ~first_round
    ~events check =
  let graph = inst.Instance.graph in
  let cands =
    Array.of_list (Vcache.candidates cache ~graph ~first_round events)
  in
  let k = Array.length cands in
  let ran = Array.make k false in
  if k > 0 then begin
    let chunks = max 1 (min k (Pool.size pool * chunk_factor)) in
    ignore
      (Pool.map_chunks pool ~chunks (fun c ->
           let lo = c * k / chunks and hi = (c + 1) * k / chunks in
           for i = lo to hi - 1 do
             let v = cands.(i) in
             let node = nodes.(v) in
             if node.Node.status <> Node.Alive then Vcache.skip cache v
             else begin
               let view = Node.view inst node ~inbox:inboxes.(v) in
               let key =
                 View_key.make ~cert:view.Scheme.cert ~nbrs:view.Scheme.nbrs
               in
               match Vcache.check cache v key with
               | Some _ -> ()
               | None ->
                   Vcache.store cache v key (run_verifier check view);
                   ran.(i) <- true
             end
           done));
  end;
  let verdicts = ref [] in
  let n = Array.length nodes in
  for v = n - 1 downto 0 do
    if nodes.(v).Node.status = Node.Alive then
      match Vcache.verdict cache v with
      | Some verdict -> verdicts := (v, verdict) :: !verdicts
      | None -> assert false (* alive ⇒ verified in round 1 *)
  done;
  Vcache.update_carry cache ~graph events;
  let reverified = ref [] in
  for i = k - 1 downto 0 do
    if ran.(i) then reverified := cands.(i) :: !reverified
  done;
  (!verdicts, Array.to_list cands, !reverified)

(* Everything the runtime records is deterministic given the seed: the
   fault plan draws from Rng streams keyed by (round, vertex), so event
   lists — and hence these counts, including the incremental layer's
   candidate and re-verification counts — are identical across job
   counts. *)
let fault_counter = function
  | Trace.Crash _ -> Some "runtime.fault.crash"
  | Trace.Went_byzantine _ -> Some "runtime.fault.byzantine"
  | Trace.Corrupt _ -> Some "runtime.fault.corrupt"
  | Trace.Drop _ -> Some "runtime.fault.drop"
  | Trace.Flip _ -> Some "runtime.fault.flip"
  | Trace.Forge _ -> Some "runtime.fault.forge"
  | Trace.Send _ | Trace.Verdict _ -> None

let record_round ~wire_bits ~events ~rejections ~reverified ~cached =
  if Metrics.is_enabled () then begin
    Metrics.incr (Metrics.counter "runtime.rounds");
    Metrics.observe (Metrics.histogram "runtime.round_wire_bits") wire_bits;
    Metrics.add
      (Metrics.counter "runtime.rejections")
      (List.length rejections);
    Metrics.add (Metrics.counter "runtime.vertices_reverified") reverified;
    Metrics.add (Metrics.counter "runtime.verdicts_cached") cached;
    List.iter
      (fun e ->
        match fault_counter e with
        | Some name -> Metrics.incr (Metrics.counter name)
        | None -> (
            match e with
            | Trace.Send _ ->
                Metrics.incr (Metrics.counter "runtime.messages_sent")
            | _ -> ()))
      events
  end

(* Detection latency in rounds, small and linear-ish: simulations run
   single-digit round counts, where power-of-two buckets would lump
   everything into two cells. *)
let latency_bounds = [| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32 |]

let record_trace trace =
  if Metrics.is_enabled () then
    match Trace.detection_latency (Trace.metrics trace) with
    | Some l ->
        Metrics.observe
          (Metrics.histogram ~bounds:latency_bounds
             "runtime.detection_latency_rounds")
          l
    | None -> ()

let execute ?pool ?jobs ?(plan = Fault.none) ?(rounds = 1) ?(seed = 0)
    ?(incremental = true) ?(compiled = true) scheme inst certs =
  if rounds < 1 then invalid_arg "Runtime.execute: rounds must be >= 1";
  if Array.length certs <> Instance.n inst then
    invalid_arg "Runtime.execute: certificate count does not match the instance";
  with_pool_arg ?pool ?jobs (fun pool ->
      Span.with_ "runtime.execute" @@ fun () ->
      (* Inbox views carry per-delivery wire copies, so the per-domain
         decode-cache checker is the applicable compiled form; [None]
         (no lowering, or compilation off) keeps the interpreted
         verifier.  Verdicts are identical either way. *)
      let check =
        match if compiled then Vcompile.view_checker scheme else None with
        | Some fast -> fast
        | None -> scheme.Scheme.verifier
      in
      let nodes = Node.boot inst certs in
      let n = Array.length nodes in
      let cache = if incremental then Some (Vcache.create n) else None in
      let rng = Rng.make seed in
      let round_streams = Rng.split rng rounds in
      let logs = ref [] in
      let outcomes = ref [] in
      let checked = Array.make rounds [] in
      let reverified = Array.make rounds [] in
      for r = 1 to rounds do
        let streams = Rng.split round_streams.(r - 1) n in
        let events, inboxes =
          Network.exchange ~pool ~plan ~first_round:(r = 1) ~inst ~nodes
            ~streams
        in
        let verdicts, round_checked, round_reverified =
          match cache with
          | Some cache ->
              verify_round_incremental ~pool ~inst ~nodes ~inboxes ~cache
                ~first_round:(r = 1) ~events check
          | None ->
              let verdicts = verify_round ~pool ~inst ~nodes ~inboxes check in
              let alive = List.map fst verdicts in
              (verdicts, alive, alive)
        in
        checked.(r - 1) <- round_checked;
        reverified.(r - 1) <- round_reverified;
        let rejections =
          List.filter_map
            (function
              | v, Scheme.Reject reason -> Some (v, reason)
              | _, Scheme.Accept -> None)
            verdicts
        in
        let verdict_events =
          List.map
            (fun (v, verdict) ->
              match verdict with
              | Scheme.Accept ->
                  Trace.Verdict { vertex = v; accepted = true; reason = "" }
              | Scheme.Reject reason ->
                  Trace.Verdict { vertex = v; accepted = false; reason })
            verdicts
        in
        let max_bits =
          Array.fold_left
            (fun acc (nd : Node.t) -> max acc (Bitstring.length nd.Node.cert))
            0 nodes
        in
        let wire_bits =
          List.fold_left
            (fun acc e ->
              match e with
              | Trace.Send { bits; _ } | Trace.Forge { bits; _ } -> acc + bits
              | _ -> acc)
            0 events
        in
        record_round ~wire_bits ~events ~rejections
          ~reverified:(List.length round_reverified)
          ~cached:(List.length verdicts - List.length round_reverified);
        if Tracer.is_enabled () then begin
          let faults =
            List.length (List.filter (fun e -> fault_counter e <> None) events)
          in
          Tracer.instant
            ~args:
              [
                ("round", r);
                ("wire_bits", wire_bits);
                ("rejections", List.length rejections);
              ]
            "runtime.round";
          if faults > 0 then
            Tracer.instant ~args:[ ("round", r); ("count", faults) ]
              "runtime.fault"
        end;
        logs :=
          {
            Trace.round = r;
            events = events @ verdict_events;
            wire_bits;
            rejections;
          }
          :: !logs;
        outcomes := { Scheme.accepted = rejections = []; rejections; max_bits } :: !outcomes
      done;
      let per_round = Array.of_list (List.rev !outcomes) in
      let detected_at =
        let found = ref None in
        Array.iteri
          (fun i (o : Scheme.outcome) ->
            if !found = None && not o.Scheme.accepted then found := Some (i + 1))
          per_round;
        !found
      in
      let trace =
        {
          Trace.scheme = scheme.Scheme.name;
          n;
          seed;
          plan = Fault.to_string plan;
          rounds = List.rev !logs;
        }
      in
      record_trace trace;
      (match detected_at with
      | Some r when Tracer.is_enabled () ->
          Tracer.instant ~args:[ ("round", r) ] "runtime.detected"
      | _ -> ());
      Logger.debug
        ~fields:
          [
            ("scheme", scheme.Scheme.name);
            ("rounds", string_of_int rounds);
            ("incremental", string_of_bool incremental);
            ( "detected_at",
              match detected_at with
              | None -> "never"
              | Some r -> string_of_int r );
          ]
        "runtime execute done";
      {
        outcome = per_round.(rounds - 1);
        per_round;
        detected_at;
        trace;
        checked;
        reverified;
      })
