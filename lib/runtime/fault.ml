type t = {
  name : string;
  drop : float;
  flip : float;
  corrupt : float;
  crash : float;
  crashed : int list;
  byzantine : float;
  byz_bits : int;
}

let none =
  {
    name = "none";
    drop = 0.;
    flip = 0.;
    corrupt = 0.;
    crash = 0.;
    crashed = [];
    byzantine = 0.;
    byz_bits = 16;
  }

let is_none p =
  p.drop = 0. && p.flip = 0. && p.corrupt = 0. && p.crash = 0.
  && p.crashed = [] && p.byzantine = 0.

let check_rate what r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fault.%s: rate %g outside [0, 1]" what r)

let drops r =
  check_rate "drops" r;
  { none with name = Printf.sprintf "drop:%g" r; drop = r }

let flips r =
  check_rate "flips" r;
  { none with name = Printf.sprintf "flip:%g" r; flip = r }

let corruption r =
  check_rate "corruption" r;
  { none with name = Printf.sprintf "corrupt:%g" r; corrupt = r }

let crashes r =
  check_rate "crashes" r;
  { none with name = Printf.sprintf "crash:%g" r; crash = r }

let crash_vertices vs =
  let vs = List.sort_uniq Int.compare vs in
  {
    none with
    name =
      Printf.sprintf "crashed:%s"
        (String.concat "+" (List.map string_of_int vs));
    crashed = vs;
  }

let byzantine ?(bits = 16) r =
  check_rate "byzantine" r;
  if bits < 0 then invalid_arg "Fault.byzantine: negative bit budget";
  { none with name = Printf.sprintf "byz:%g" r; byzantine = r; byz_bits = bits }

let union a b =
  {
    name =
      (if is_none a then b.name
       else if is_none b then a.name
       else a.name ^ "," ^ b.name);
    drop = Float.max a.drop b.drop;
    flip = Float.max a.flip b.flip;
    corrupt = Float.max a.corrupt b.corrupt;
    crash = Float.max a.crash b.crash;
    crashed = List.sort_uniq Int.compare (a.crashed @ b.crashed);
    byzantine = Float.max a.byzantine b.byzantine;
    byz_bits = max a.byz_bits b.byz_bits;
  }

let of_spec spec =
  let ( let* ) = Result.bind in
  let parse_rate kind v =
    match float_of_string_opt v with
    | Some r when r >= 0. && r <= 1. -> Ok r
    | Some _ | None ->
        Error (Printf.sprintf "fault %s: %S is not a rate in [0, 1]" kind v)
  in
  let parse_item item =
    match String.index_opt item ':' with
    | None -> Error (Printf.sprintf "fault item %S: expected kind:value" item)
    | Some i -> (
        let kind = String.sub item 0 i in
        let v = String.sub item (i + 1) (String.length item - i - 1) in
        match kind with
        | "drop" -> Result.map drops (parse_rate kind v)
        | "flip" -> Result.map flips (parse_rate kind v)
        | "corrupt" -> Result.map corruption (parse_rate kind v)
        | "crash" -> Result.map crashes (parse_rate kind v)
        | "byz" -> Result.map (byzantine ?bits:None) (parse_rate kind v)
        | "crashed" -> (
            let vs = String.split_on_char '+' v in
            match
              List.map
                (fun s ->
                  match int_of_string_opt s with
                  | Some x when x >= 0 -> x
                  | _ -> raise Exit)
                vs
            with
            | vs -> Ok (crash_vertices vs)
            | exception Exit ->
                Error
                  (Printf.sprintf
                     "fault crashed: %S is not a +-separated vertex list" v))
        | _ ->
            Error
              (Printf.sprintf
                 "unknown fault kind %S (expected drop, flip, corrupt, crash, \
                  byz or crashed)"
                 kind))
  in
  match String.trim spec with
  | "" | "none" -> Ok none
  | spec ->
      let* plan =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* p = parse_item (String.trim item) in
            Ok (union acc p))
          (Ok none)
          (String.split_on_char ',' spec)
      in
      (* keep the user's spelling for reproducibility in traces *)
      Ok { plan with name = spec }

let to_string p = p.name
