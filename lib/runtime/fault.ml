type edit = { round : int; add : bool; u : int; v : int }

type t = {
  name : string;
  drop : float;
  flip : float;
  corrupt : float;
  crash : float;
  crashed : int list;
  byzantine : float;
  byz_bits : int;
  addedge : float;
  deledge : float;
  edits : edit list;
  horizon : int;
}

(* [name] is always the canonical rendering of the other fields
   (computed by [rename], below), so [of_spec (to_string p)] is a
   fixpoint for every reachable plan — constructors, [union] and
   [of_spec] all go through [rename].  *)

let none =
  {
    name = "none";
    drop = 0.;
    flip = 0.;
    corrupt = 0.;
    crash = 0.;
    crashed = [];
    byzantine = 0.;
    byz_bits = 16;
    addedge = 0.;
    deledge = 0.;
    edits = [];
    horizon = max_int;
  }

let is_none p =
  p.drop = 0. && p.flip = 0. && p.corrupt = 0. && p.crash = 0.
  && p.crashed = [] && p.byzantine = 0. && p.addedge = 0. && p.deledge = 0.
  && p.edits = []

let check_rate what r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fault.%s: rate %g outside [0, 1]" what r)

(* Shortest float literal that round-trips: %g covers every rate a
   human would write; the %.17g fallback keeps programmatic plans
   (e.g. qcheck-generated rates) lossless. *)
let rate_str r =
  let s = Printf.sprintf "%g" r in
  if float_of_string s = r then s else Printf.sprintf "%.17g" r

let edit_compare a b =
  match Int.compare a.round b.round with
  | 0 -> (
      match Int.compare a.u b.u with
      | 0 -> (
          match Int.compare a.v b.v with
          | 0 -> Bool.compare a.add b.add
          | c -> c)
      | c -> c)
  | c -> c

let canonical_name p =
  if is_none p && p.horizon = max_int then "none"
  else begin
    let items = ref [] in
    let push s = items := s :: !items in
    if p.horizon <> max_int then push (Printf.sprintf "until:%d" p.horizon);
    List.iter
      (fun e ->
        push
          (Printf.sprintf "edit:%d:%c%d-%d" e.round
             (if e.add then '+' else '-')
             e.u e.v))
      (List.rev (List.sort edit_compare p.edits));
    if p.deledge > 0. then push ("deledge:" ^ rate_str p.deledge);
    if p.addedge > 0. then push ("addedge:" ^ rate_str p.addedge);
    if p.byzantine > 0. then
      push
        (if p.byz_bits = 16 then "byz:" ^ rate_str p.byzantine
         else Printf.sprintf "byz:%s:%d" (rate_str p.byzantine) p.byz_bits);
    if p.crashed <> [] then
      push
        (Printf.sprintf "crashed:%s"
           (String.concat "+" (List.map string_of_int p.crashed)));
    if p.crash > 0. then push ("crash:" ^ rate_str p.crash);
    if p.corrupt > 0. then push ("corrupt:" ^ rate_str p.corrupt);
    if p.flip > 0. then push ("flip:" ^ rate_str p.flip);
    if p.drop > 0. then push ("drop:" ^ rate_str p.drop);
    String.concat "," !items
  end

(* Re-derive [name] after any field change, and normalize the
   field representation itself: sorted duplicate-free crash list and
   edit schedule, default [byz_bits] whenever no Byzantine vertex can
   exist (so the unrendered bit budget can never make two observably
   equal plans differ). *)
let rename p =
  let p =
    {
      p with
      crashed = List.sort_uniq Int.compare p.crashed;
      edits = List.sort_uniq edit_compare p.edits;
      byz_bits = (if p.byzantine > 0. then p.byz_bits else none.byz_bits);
    }
  in
  { p with name = canonical_name p }

let drops r =
  check_rate "drops" r;
  rename { none with drop = r }

let flips r =
  check_rate "flips" r;
  rename { none with flip = r }

let corruption r =
  check_rate "corruption" r;
  rename { none with corrupt = r }

let crashes r =
  check_rate "crashes" r;
  rename { none with crash = r }

let crash_vertices vs =
  List.iter
    (fun v ->
      if v < 0 then invalid_arg "Fault.crash_vertices: negative vertex")
    vs;
  rename { none with crashed = vs }

let byzantine ?(bits = 16) r =
  check_rate "byzantine" r;
  if bits < 0 then invalid_arg "Fault.byzantine: negative bit budget";
  rename { none with byzantine = r; byz_bits = bits }

let edge_additions r =
  check_rate "edge_additions" r;
  rename { none with addedge = r }

let edge_deletions r =
  check_rate "edge_deletions" r;
  rename { none with deledge = r }

let edit ~round ~add u v =
  if round < 1 then invalid_arg "Fault.edit: rounds are 1-based";
  if u < 0 || v < 0 then invalid_arg "Fault.edit: negative vertex";
  if u = v then invalid_arg "Fault.edit: loop";
  rename { none with edits = [ { round; add; u = min u v; v = max u v } ] }

let until r =
  if r < 0 then invalid_arg "Fault.until: negative round";
  rename { none with horizon = r }

let union a b =
  rename
    {
      none with
      drop = Float.max a.drop b.drop;
      flip = Float.max a.flip b.flip;
      corrupt = Float.max a.corrupt b.corrupt;
      crash = Float.max a.crash b.crash;
      crashed = a.crashed @ b.crashed;
      byzantine = Float.max a.byzantine b.byzantine;
      byz_bits =
        (* the bit budget of the plan that actually has Byzantine
           vertices; worst of both when both do *)
        (match (a.byzantine > 0., b.byzantine > 0.) with
        | true, true -> max a.byz_bits b.byz_bits
        | true, false -> a.byz_bits
        | false, true -> b.byz_bits
        | false, false -> none.byz_bits);
      addedge = Float.max a.addedge b.addedge;
      deledge = Float.max a.deledge b.deledge;
      edits = a.edits @ b.edits;
      (* the stricter horizon wins: [none] has horizon [max_int], so a
         comma-separated spec's [until:] survives the union fold *)
      horizon = min a.horizon b.horizon;
    }

let of_spec spec =
  let ( let* ) = Result.bind in
  let parse_rate kind v =
    match float_of_string_opt v with
    | Some r when r >= 0. && r <= 1. -> Ok r
    | Some _ | None ->
        Error (Printf.sprintf "fault %s: %S is not a rate in [0, 1]" kind v)
  in
  let parse_item item =
    match String.index_opt item ':' with
    | None -> Error (Printf.sprintf "fault item %S: expected kind:value" item)
    | Some i -> (
        let kind = String.sub item 0 i in
        let v = String.sub item (i + 1) (String.length item - i - 1) in
        match kind with
        | "drop" -> Result.map drops (parse_rate kind v)
        | "flip" -> Result.map flips (parse_rate kind v)
        | "corrupt" -> Result.map corruption (parse_rate kind v)
        | "crash" -> Result.map crashes (parse_rate kind v)
        | "addedge" -> Result.map edge_additions (parse_rate kind v)
        | "deledge" -> Result.map edge_deletions (parse_rate kind v)
        | "byz" -> (
            match String.index_opt v ':' with
            | None -> Result.map (byzantine ?bits:None) (parse_rate kind v)
            | Some j -> (
                let rv = String.sub v 0 j in
                let bv = String.sub v (j + 1) (String.length v - j - 1) in
                match int_of_string_opt bv with
                | Some bits when bits >= 0 ->
                    Result.map (byzantine ~bits) (parse_rate kind rv)
                | _ ->
                    Error
                      (Printf.sprintf
                         "fault byz: %S is not a nonnegative bit budget" bv)))
        | "until" -> (
            match int_of_string_opt v with
            | Some r when r >= 0 -> Ok (until r)
            | _ ->
                Error
                  (Printf.sprintf "fault until: %S is not a nonnegative round"
                     v))
        | "edit" -> (
            (* ROUND:+U-V or ROUND:-U-V *)
            let err () =
              Error
                (Printf.sprintf
                   "fault edit: %S is not ROUND:+U-V or ROUND:-U-V" v)
            in
            match String.index_opt v ':' with
            | None -> err ()
            | Some j -> (
                let rv = String.sub v 0 j in
                let ev = String.sub v (j + 1) (String.length v - j - 1) in
                match (int_of_string_opt rv, ev) with
                | Some round, ev when round >= 1 && String.length ev >= 4 -> (
                    let add =
                      match ev.[0] with
                      | '+' -> Some true
                      | '-' -> Some false
                      | _ -> None
                    in
                    let rest = String.sub ev 1 (String.length ev - 1) in
                    match (add, String.index_opt rest '-') with
                    | Some add, Some k -> (
                        let us = String.sub rest 0 k in
                        let vs =
                          String.sub rest (k + 1) (String.length rest - k - 1)
                        in
                        match (int_of_string_opt us, int_of_string_opt vs)
                        with
                        | Some u, Some w when u >= 0 && w >= 0 && u <> w ->
                            Ok (edit ~round ~add u w)
                        | _ -> err ())
                    | _ -> err ())
                | _ -> err ()))
        | "crashed" -> (
            let vs = String.split_on_char '+' v in
            match
              List.map
                (fun s ->
                  match int_of_string_opt s with
                  | Some x when x >= 0 -> x
                  | _ -> raise Exit)
                vs
            with
            | vs -> Ok (crash_vertices vs)
            | exception Exit ->
                Error
                  (Printf.sprintf
                     "fault crashed: %S is not a +-separated vertex list" v))
        | _ ->
            Error
              (Printf.sprintf
                 "unknown fault kind %S (expected drop, flip, corrupt, crash, \
                  byz, crashed, addedge, deledge, edit or until)"
                 kind))
  in
  match String.trim spec with
  | "" | "none" -> Ok none
  | spec ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* p = parse_item (String.trim item) in
          Ok (union acc p))
        (Ok none)
        (String.split_on_char ',' spec)

let to_string p = p.name
