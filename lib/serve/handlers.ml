(* Request evaluation: the one implementation behind the socket server
   and the in-process differential tests.

   Everything here is deterministic in the request: schemes come from
   the Registry (pinned instantiations), graphs from Spec (pure
   generators), randomness from explicit request seeds.  The server's
   responses are therefore bit-identical to what a CLI run computes on
   the same inputs — the differential suite in test/test_serve.ml
   holds Verify against Engine.run_par and Simulate against
   Runtime.execute, trace bytes included.

   Prover work (instance construction + certificate computation) is
   cached per (scheme, graph): a service exists to answer many verify
   requests against few instances, and reusing the *physically same*
   certificate array across requests is what lets Vcompile's
   single-slot kernel cache skip decode entirely on repeat sweeps.
   The cache is a sharded Memo, bounded only by the distinct instances
   a deployment names; flip variants get their own entries so they are
   physically stable too. *)

type prepared = {
  scheme : Scheme.t;
  inst : Instance.t;
  certs : Bitstring.t array option;  (* interned; None = prover declined *)
}

type t = {
  pool : Pool.t;
  batcher : (Protocol.request, Protocol.response) Batcher.t;
  prepared : (string * string, prepared) Memo.t;
  flipped : (string * string * int * int, Bitstring.t array) Memo.t;
  instances : (string, Instance.t) Memo.t;
      (* graph spec string → built instance, shared across schemes: a
         deployment typically certifies several properties of one
         topology, and at 10⁶+ vertices regenerating the graph (and
         re-streaming its edge list) dwarfs the verification sweep.
         Instances are immutable, and physical sharing is what lets
         Vcompile's instance-keyed kernel slot carry across schemes'
         requests on the same graph. *)
}

let create ~pool () =
  {
    pool;
    batcher = Batcher.create ();
    prepared = Memo.create ~name:"serve.prepared" 16;
    flipped = Memo.create ~name:"serve.flipped" 16;
    instances = Memo.create ~name:"serve.instances" 16;
  }

exception Reject of Protocol.error_code

(* Caches are capped: past the cap a request is still served, just
   without caching, so a client cycling through distinct graph specs
   costs itself prover time instead of growing the server's heap.
   (The Batcher still coalesces concurrent duplicates either way.) *)
let max_prepared = 256
let max_flipped = 1024
let max_instances = 64

(* Work named by a request is bounded the way Attack's trials always
   were: a wire graph spec may not describe an instance past these
   caps (clique:100000 is ~5e9 edges) and a Simulate may not pin a
   worker for an unbounded number of rounds.  Past a cap the answer
   is a typed Bad_graph/Bad_argument, computed before anything is
   allocated.  The CLI keeps calling Spec.parse uncapped.  The caps
   admit the streamed multi-million-vertex instances the CSR substrate
   is built for (2²⁴ vertices / 2²⁶ edges ≈ 1 GiB of CSR arrays);
   memory for admitted work is the deployment's queue-depth × instance
   budget, as before. *)
let max_graph_vertices = 1 lsl 24
let max_graph_edges = 1 lsl 26
let max_rounds = 1_000_000

let instance_cache_hits () =
  Metrics.counter ~approx:true "serve.instance_cache_hits"

let instance_for t graph =
  match Memo.find_opt t.instances graph with
  | Some inst ->
      if Metrics.is_enabled () then Metrics.incr (instance_cache_hits ());
      inst
  | None ->
      let g =
        match
          Spec.parse ~max_vertices:max_graph_vertices
            ~max_edges:max_graph_edges graph
        with
        | Ok g -> g
        | Error msg -> raise (Reject (Protocol.Bad_graph msg))
      in
      let inst = Instance.make g in
      if Memo.length t.instances < max_instances then
        Memo.set t.instances graph inst;
      inst

let prepare t ~scheme ~graph =
  let key = (scheme, graph) in
  match Memo.find_opt t.prepared key with
  | Some p -> p
  | None ->
      let entry =
        match Registry.find scheme with
        | Some e -> e
        | None -> raise (Reject (Protocol.Unknown_scheme scheme))
      in
      let inst = instance_for t graph in
      let sc = entry.Registry.scheme in
      let certs =
        match sc.Scheme.prover inst with
        | None -> None
        | Some certs ->
            let certs = Cert_store.intern_all certs in
            Scheme.record_cert_sizes sc certs;
            Some certs
      in
      let p = { scheme = sc; inst; certs } in
      if Memo.length t.prepared < max_prepared then Memo.set t.prepared key p;
      p

let certs_or_decline p =
  match p.certs with
  | Some certs -> certs
  | None -> raise (Reject Protocol.Prover_declined)

(* The flip lands on real coordinates ([mod] the instance): loadgen can
   drive the rejection path without knowing certificate lengths, and a
   differential test can reproduce the exact mutation. *)
let flipped_certs t ~scheme ~graph p (v, b) =
  let key = (scheme, graph, v, b) in
  match Memo.find_opt t.flipped key with
  | Some certs -> certs
  | None ->
      let base = certs_or_decline p in
      let n = Array.length base in
      let v = v mod n in
      let certs = Array.copy base in
      let len = Bitstring.length certs.(v) in
      if len > 0 then
        certs.(v) <- Cert_store.intern (Bitstring.flip certs.(v) (b mod len));
      if Memo.length t.flipped < max_flipped then Memo.set t.flipped key certs;
      certs

let verdict_of_outcome (o : Scheme.outcome) =
  Protocol.Verdict
    {
      accepted = o.Scheme.accepted;
      max_bits = o.Scheme.max_bits;
      rejections = o.Scheme.rejections;
    }

let eval t (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Stats -> Protocol.Stats_text (Export.to_prometheus (Export.snapshot ()))
  | Protocol.Certify { scheme; graph } ->
      let p = prepare t ~scheme ~graph in
      let certs = certs_or_decline p in
      verdict_of_outcome (Engine.run_par ~pool:t.pool p.scheme p.inst certs)
  | Protocol.Verify { scheme; graph; flip } ->
      let p = prepare t ~scheme ~graph in
      let certs =
        match flip with
        | None -> certs_or_decline p
        | Some fl -> flipped_certs t ~scheme ~graph p fl
      in
      verdict_of_outcome (Engine.run_par ~pool:t.pool p.scheme p.inst certs)
  | Protocol.Simulate { scheme; graph; plan; rounds; seed } ->
      if rounds < 1 || rounds > max_rounds then
        raise (Reject (Protocol.Bad_argument "rounds must be in [1, 1e6]"));
      let p = prepare t ~scheme ~graph in
      let certs = certs_or_decline p in
      let plan =
        match Fault.of_spec plan with
        | Ok plan -> plan
        | Error msg -> raise (Reject (Protocol.Bad_plan msg))
      in
      let r =
        Runtime.execute ~pool:t.pool ~plan ~rounds ~seed p.scheme p.inst certs
      in
      Protocol.Sim
        {
          detected_at = r.Runtime.detected_at;
          accepted = r.Runtime.outcome.Scheme.accepted;
          trace = Trace.to_json r.Runtime.trace;
        }
  | Protocol.Attack { scheme; graph; trials; max_bits; seed } ->
      if trials < 0 || trials > 1_000_000 then
        raise (Reject (Protocol.Bad_argument "trials must be in [0, 1e6]"));
      if max_bits < 0 || max_bits > 4096 then
        raise (Reject (Protocol.Bad_argument "max-bits must be in [0, 4096]"));
      let p = prepare t ~scheme ~graph in
      let report =
        Engine.attack_par ~pool:t.pool (Rng.make seed) p.scheme p.inst ~trials
          ~max_bits
      in
      Protocol.Attacked
        {
          trials = report.Attack.trials;
          fooled = report.Attack.fooled <> None;
        }

(* Whether concurrent identical requests may share one evaluation.
   Stats reads live mutable state and Ping is cheaper than the
   table lookup. *)
let cacheable = function
  | Protocol.Certify _ | Protocol.Verify _ | Protocol.Simulate _
  | Protocol.Attack _ ->
      true
  | Protocol.Ping | Protocol.Stats -> false

let batcher t = t.batcher

let handle t req =
  match
    if cacheable req then Batcher.run t.batcher req (fun () -> eval t req)
    else eval t req
  with
  | resp -> resp
  | exception Reject code -> Protocol.Error code
  | exception e when not (Fatal.is_fatal e) ->
      Protocol.Error (Protocol.Internal (Printexc.to_string e))
