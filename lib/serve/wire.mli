(** Versioned length-prefixed framing for the certification service.

    A frame is [magic, version, opcode, request id, payload length,
    payload]; see wire.ml for the byte layout.  {!decode} is the
    incremental, strictly bounds-checked inverse of {!encode}:

    - [encode ∘ decode] and [decode ∘ encode] are identities on valid
      frames (property-tested);
    - a prefix of a valid encoding yields [Need n] with [n] the exact
      number of missing bytes;
    - bad magic, an unsupported version, a sign-overflowing request id
      and an oversized or negative payload length yield a typed
      {!error} — the stream has lost framing and the connection must be
      dropped.  Unknown opcode {e bytes} frame fine and are left to the
      protocol layer, which answers them with a typed error response. *)

type frame = {
  id : int;  (** request id, echoed verbatim in the response frame *)
  opcode : int;  (** 0..255; semantics live in {!Protocol} *)
  payload : string;
}

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_id  (** request id negative or ≥ 2{^62} (native-int overflow) *)
  | Oversized of int  (** negative, or above {!max_payload} *)

val error_to_string : error -> string

type progress =
  | Frame of frame * int  (** a parsed frame and the bytes it consumed *)
  | Need of int  (** incomplete: at least this many more bytes *)
  | Fail of error  (** framing lost; connection-fatal *)

val header_size : int
val max_payload : int

val encode : frame -> string
(** Raises [Invalid_argument] on a negative id, an opcode outside
    0..255, or a payload above {!max_payload}. *)

val encode_into : Buffer.t -> frame -> unit
(** {!encode} appending to an existing buffer — response writers batch
    many frames into one [write]. *)

val decode : Bytes.t -> pos:int -> len:int -> progress
(** Decode one frame from [buf[pos, len)].  Never reads outside that
    range and never raises on adversarial bytes. *)
