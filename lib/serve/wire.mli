(** Versioned length-prefixed framing for the certification service.

    A frame is [magic, version, opcode, request id, payload length,
    trace word, payload]; see wire.ml for the byte layout.  The trace
    word propagates request-scoped tracing context ({!Localcert_obs.Tracer})
    across the wire: bit 63 flags a traced request, the low 62 bits
    carry the trace id, and the encoding is strict — an untraced frame
    is all-zero bits, and any other combination with bit 63 clear (or
    with reserved bit 62 set) is a framing error, so a trace word has
    exactly one valid encoding.  {!decode} is the incremental, strictly
    bounds-checked inverse of {!encode}:

    - [encode ∘ decode] and [decode ∘ encode] are identities on valid
      frames (property-tested);
    - a prefix of a valid encoding yields [Need n] with [n] the exact
      number of missing bytes;
    - bad magic, an unsupported version, a sign-overflowing request id,
      a malformed trace word and an oversized or negative payload
      length yield a typed {!error} — the stream has lost framing and
      the connection must be dropped.  Unknown opcode {e bytes} frame
      fine and are left to the protocol layer, which answers them with
      a typed error response. *)

type frame = {
  id : int;  (** request id, echoed verbatim in the response frame *)
  opcode : int;  (** 0..255; semantics live in {!Protocol} *)
  trace : int option;  (** trace id in [[0, 2{^62})], echoed in responses *)
  payload : string;
}

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_id  (** request id negative or ≥ 2{^62} (native-int overflow) *)
  | Bad_trace  (** trace word neither zero nor flag+id *)
  | Oversized of int  (** negative, or above {!max_payload} *)

val error_to_string : error -> string

type progress =
  | Frame of frame * int  (** a parsed frame and the bytes it consumed *)
  | Need of int  (** incomplete: at least this many more bytes *)
  | Fail of error  (** framing lost; connection-fatal *)

val header_size : int
val max_payload : int

val max_trace : int
(** Largest valid trace id, [2{^62} - 1]. *)

val encode : frame -> string
(** Raises [Invalid_argument] on a negative id, an opcode outside
    0..255, a trace id outside [[0, {!max_trace}]], or a payload above
    {!max_payload}. *)

val encode_into : Buffer.t -> frame -> unit
(** {!encode} appending to an existing buffer — response writers batch
    many frames into one [write]. *)

val decode : Bytes.t -> pos:int -> len:int -> progress
(** Decode one frame from [buf[pos, len)].  Never reads outside that
    range and never raises on adversarial bytes. *)
