(* Length-prefixed binary framing for the certification service.

   Header layout (24 bytes, all integers big-endian):

     offset 0   2 bytes   magic "LC"
     offset 2   1 byte    protocol version (currently 2)
     offset 3   1 byte    opcode
     offset 4   8 bytes   request id (non-negative, < 2^62)
     offset 12  4 bytes   payload length in bytes
     offset 16  8 bytes   trace word
     offset 24  ...       payload

   The trace word carries request-scoped tracing context end-to-end:
   bit 63 is the "traced" flag, bits 0..61 the trace id, bit 62 must be
   clear.  An untraced frame carries all-zero bits — the encoding is
   strict in both directions (a set flag with bit 62 set, or a clear
   flag with any id bit set, is a framing error), so every trace word
   has exactly one meaning and fuzzed bytes cannot alias as "untraced".

   Decoding is incremental and strictly bounds-checked: a frame is
   never touched past [len], a short buffer yields [Need] with the
   exact number of missing bytes, and a header that can never become a
   valid frame (bad magic, unsupported version, oversized or
   sign-overflowing fields, malformed trace word) yields a typed
   [Fail] — the caller treats those as connection-fatal because the
   stream has lost framing.  Unknown *opcodes* are deliberately not a
   wire error: every opcode byte frames identically, so the protocol
   layer can answer them with a typed error response on the
   still-synchronized stream. *)

type frame = { id : int; opcode : int; trace : int option; payload : string }

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_id
  | Bad_trace
  | Oversized of int

let error_to_string = function
  | Bad_magic m -> Printf.sprintf "bad magic 0x%04x" m
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_id -> "request id out of range"
  | Bad_trace -> "malformed trace word"
  | Oversized n -> Printf.sprintf "payload length %d exceeds the frame limit" n

type progress = Frame of frame * int | Need of int | Fail of error

let magic = 0x4C43 (* "LC" *)
let version = 2
let header_size = 24
let max_trace = (1 lsl 62) - 1
let traced_flag = 0x8000_0000_0000_0000L
let trace_reserved = 0x4000_0000_0000_0000L
let trace_id_mask = 0x3FFF_FFFF_FFFF_FFFFL

(* Certificates on multi-million-vertex instances stay far below this;
   anything larger is an attack or a bug, and bounding it keeps one
   malicious connection from ballooning the server's buffers. *)
let max_payload = 1 lsl 24

let encode_into buf { id; opcode; trace; payload } =
  if id < 0 then invalid_arg "Wire.encode: negative request id";
  if opcode < 0 || opcode > 0xff then invalid_arg "Wire.encode: opcode byte";
  (match trace with
  | Some t when t < 0 || t > max_trace ->
      invalid_arg "Wire.encode: trace id out of range"
  | _ -> ());
  if String.length payload > max_payload then
    invalid_arg "Wire.encode: payload exceeds max_payload";
  Buffer.add_uint16_be buf magic;
  Buffer.add_uint8 buf version;
  Buffer.add_uint8 buf opcode;
  Buffer.add_int64_be buf (Int64.of_int id);
  Buffer.add_int32_be buf (Int32.of_int (String.length payload));
  (match trace with
  | None -> Buffer.add_int64_be buf 0L
  | Some t -> Buffer.add_int64_be buf (Int64.logor traced_flag (Int64.of_int t)));
  Buffer.add_string buf payload

let encode f =
  let b = Buffer.create (header_size + String.length f.payload) in
  encode_into b f;
  Buffer.contents b

let decode_trace_word w =
  if Int64.equal w 0L then Ok None
  else if
    (* flag set, reserved bit clear: the id bits are the trace id *)
    Int64.equal (Int64.logand w traced_flag) traced_flag
    && Int64.equal (Int64.logand w trace_reserved) 0L
  then Ok (Some (Int64.to_int (Int64.logand w trace_id_mask)))
  else Error Bad_trace

let decode buf ~pos ~len =
  let avail = len - pos in
  if avail < header_size then Need (header_size - avail)
  else begin
    let m = Bytes.get_uint16_be buf pos in
    if m <> magic then Fail (Bad_magic m)
    else begin
      let v = Bytes.get_uint8 buf (pos + 2) in
      if v <> version then Fail (Bad_version v)
      else begin
        let opcode = Bytes.get_uint8 buf (pos + 3) in
        let id64 = Bytes.get_int64_be buf (pos + 4) in
        let plen32 = Bytes.get_int32_be buf (pos + 12) in
        let plen = Int32.to_int plen32 in
        (* ids must round-trip through OCaml's 63-bit native int *)
        if Int64.compare id64 0L < 0 || Int64.compare id64 0x4000000000000000L >= 0
        then Fail Bad_id
        else if plen < 0 || plen > max_payload then Fail (Oversized plen)
        else begin
          match decode_trace_word (Bytes.get_int64_be buf (pos + 16)) with
          | Error e -> Fail e
          | Ok trace ->
              if avail < header_size + plen then
                Need (header_size + plen - avail)
              else
                Frame
                  ( {
                      id = Int64.to_int id64;
                      opcode;
                      trace;
                      payload = Bytes.sub_string buf (pos + header_size) plen;
                    },
                    header_size + plen )
        end
      end
    end
  end
