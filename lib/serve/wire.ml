(* Length-prefixed binary framing for the certification service.

   Header layout (16 bytes, all integers big-endian):

     offset 0   2 bytes   magic "LC"
     offset 2   1 byte    protocol version (currently 1)
     offset 3   1 byte    opcode
     offset 4   8 bytes   request id (non-negative, < 2^63)
     offset 12  4 bytes   payload length in bytes
     offset 16  ...       payload

   Decoding is incremental and strictly bounds-checked: a frame is
   never touched past [len], a short buffer yields [Need] with the
   exact number of missing bytes, and a header that can never become a
   valid frame (bad magic, unsupported version, oversized or
   sign-overflowing fields) yields a typed [Fail] — the caller treats
   those as connection-fatal because the stream has lost framing.
   Unknown *opcodes* are deliberately not a wire error: every opcode
   byte frames identically, so the protocol layer can answer them with
   a typed error response on the still-synchronized stream. *)

type frame = { id : int; opcode : int; payload : string }

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_id
  | Oversized of int

let error_to_string = function
  | Bad_magic m -> Printf.sprintf "bad magic 0x%04x" m
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_id -> "request id out of range"
  | Oversized n -> Printf.sprintf "payload length %d exceeds the frame limit" n

type progress = Frame of frame * int | Need of int | Fail of error

let magic = 0x4C43 (* "LC" *)
let version = 1
let header_size = 16

(* Certificates on multi-million-vertex instances stay far below this;
   anything larger is an attack or a bug, and bounding it keeps one
   malicious connection from ballooning the server's buffers. *)
let max_payload = 1 lsl 24

let encode_into buf { id; opcode; payload } =
  if id < 0 then invalid_arg "Wire.encode: negative request id";
  if opcode < 0 || opcode > 0xff then invalid_arg "Wire.encode: opcode byte";
  if String.length payload > max_payload then
    invalid_arg "Wire.encode: payload exceeds max_payload";
  Buffer.add_uint16_be buf magic;
  Buffer.add_uint8 buf version;
  Buffer.add_uint8 buf opcode;
  Buffer.add_int64_be buf (Int64.of_int id);
  Buffer.add_int32_be buf (Int32.of_int (String.length payload));
  Buffer.add_string buf payload

let encode f =
  let b = Buffer.create (header_size + String.length f.payload) in
  encode_into b f;
  Buffer.contents b

let decode buf ~pos ~len =
  let avail = len - pos in
  if avail < header_size then Need (header_size - avail)
  else begin
    let m = Bytes.get_uint16_be buf pos in
    if m <> magic then Fail (Bad_magic m)
    else begin
      let v = Bytes.get_uint8 buf (pos + 2) in
      if v <> version then Fail (Bad_version v)
      else begin
        let opcode = Bytes.get_uint8 buf (pos + 3) in
        let id64 = Bytes.get_int64_be buf (pos + 4) in
        let plen32 = Bytes.get_int32_be buf (pos + 12) in
        let plen = Int32.to_int plen32 in
        (* ids must round-trip through OCaml's 63-bit native int *)
        if Int64.compare id64 0L < 0 || Int64.compare id64 0x4000000000000000L >= 0
        then Fail Bad_id
        else if plen < 0 || plen > max_payload then Fail (Oversized plen)
        else if avail < header_size + plen then
          Need (header_size + plen - avail)
        else
          Frame
            ( {
                id = Int64.to_int id64;
                opcode;
                payload = Bytes.sub_string buf (pos + header_size) plen;
              },
              header_size + plen )
      end
    end
  end
