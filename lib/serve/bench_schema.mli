(** Schema for [BENCH_SERVE.json], the serving-latency artifact.

    The load generator ({!Loadgen}) writes one document per campaign: a
    list of runs, each one open-loop client configuration against one
    request shape, carrying outcome counts and the latency distribution
    (p50/p99/p999/max in microseconds) plus saturation throughput.

    Like [BENCH_PERF.json] ({!Localcert_util.Perf_schema}), the schema
    lives next to the producer and is enforced by the test suite over
    the committed artifact, so drift between writer and reader is a
    test failure rather than a silently stale file.  Validation is
    strict: exact field sets, non-negative finite numbers, outcome
    counts that tile [sent], and percentile monotonicity
    (p50 ≤ p99 ≤ p999 ≤ max). *)

type run = {
  label : string;  (** unique within the document *)
  opcode : string;  (** request kind, e.g. ["verify"] *)
  scheme : string;
  graph : string;  (** the {!Localcert_graph.Spec} string used *)
  connections : int;
  window : int;  (** per-connection pipeline depth *)
  rate : int option;  (** requests/s pacing; [None] = unpaced *)
  sent : int;
  ok : int;
  retry_later : int;  (** typed overload responses *)
  errors : int;
  duration_s : float;
  throughput_rps : float;  (** completed responses per second *)
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
}

type doc = { smoke : bool; workers : int; runs : run list }

val render : doc -> string
(** Pretty-printed JSON, trailing newline included; [render ∘ parse]
    is a fixpoint. *)

val parse : string -> (doc, string) result
val parse_exn : string -> doc

val find_run : doc -> string -> run option
