(** Request evaluation — the one implementation behind both the socket
    server and the in-process differential tests.

    Responses are deterministic in the request: schemes resolve through
    {!Localcert_core.Registry}, graphs through {!Localcert_graph.Spec},
    randomness through explicit seeds.  [Verify] answers exactly what
    {!Localcert_engine.Engine.run_par} computes and [Simulate] exactly
    what {!Localcert_runtime.Runtime.execute} computes (trace bytes
    included) — that equivalence is what test/test_serve.ml checks
    differentially through a real socket. *)

type t

val create : pool:Pool.t -> unit -> t
(** Shared evaluation state: the engine pool, the {!Batcher}, and
    capped per-(scheme, graph) prover caches whose certificate arrays
    stay physically stable across requests (so Vcompile's single-slot
    kernel cache fires on repeat sweeps). *)

val handle : t -> Protocol.request -> Protocol.response
(** Evaluate one request.  Identical concurrent cacheable requests are
    coalesced through the batcher.  All failures (unknown scheme, bad
    graph, prover declined, non-fatal evaluation exceptions) come back
    as [Protocol.Error]; only {!Localcert_util.Fatal.is_fatal}
    exceptions propagate. *)

val batcher : t -> (Protocol.request, Protocol.response) Batcher.t
(** The shared batcher (the server feeds group sizes into its
    [serve.batch_size] histogram). *)
