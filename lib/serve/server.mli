(** The certification server: accept loop, worker domains, graceful
    drain.

    One IO domain (the caller of {!run}) owns the listen socket and
    every connection: it accepts, reads, frames incrementally with
    {!Wire.decode} and decides admission without ever blocking.  A
    fixed pool of worker domains pops queue {e batches}, groups them by
    request so identical concurrent requests share one engine sweep,
    and writes responses (out of request order — clients match on
    request id).  Overload is answered inline with RETRY_LATER from
    the IO domain; see DESIGN §5.6. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; [ready] reports it *)
  workers : int;  (** response worker domains, ≥ 1 *)
  jobs : int;  (** engine pool size shared by the workers *)
  queue_capacity : int;  (** global admission bound *)
  inflight_cap : int;  (** per-connection admission bound *)
  max_connections : int;  (** accepts past this are closed *)
  batch_max : int;  (** max requests a worker pops at once *)
  trace_rate : float;
      (** fraction of untraced requests the server samples into the
          tracer (0 disables; client-traced requests are always
          honoured).  Effective only while {!Localcert_obs.Tracer} is
          enabled. *)
}

val default_config : config

val resolve_addr : host:string -> port:int -> Unix.sockaddr
(** Resolve [host] (a numeric IPv4 address or a name like
    ["localhost"], via getaddrinfo) to an IPv4 socket address.
    Raises [Failure] with a readable message when the name does not
    resolve.  Shared by the server's bind and the load generator's
    connects. *)

val run :
  ?stop:bool Atomic.t ->
  ?install_signals:bool ->
  ?ready:(int -> unit) ->
  config ->
  unit
(** Serve until [stop] becomes true, then drain: stop accepting,
    finish every admitted request, flush responses, close, run the
    {!Shutdown} cleanups, return normally.

    [install_signals] (default true) routes SIGINT/SIGTERM to the
    drain path (the handler just sets [stop]); pass [false] in tests
    that stop the server through the atomic.  [ready] is called with
    the bound port before the first accept — the hook the CLI uses to
    print the port and the tests use to connect to an ephemeral one.
    Blocks the calling domain for the server's lifetime. *)
