(* The long-lived certification server.

   Topology: one IO domain (this caller) runs a select loop over the
   listen socket and every connection — it accepts, reads, frames
   (Wire.decode is incremental) and decides admission; a fixed pool of
   worker domains pops queue batches, evaluates requests through
   Handlers (grouped so identical requests in a batch share one engine
   sweep) and writes responses.  No threads library: domains and
   blocking sockets only, which is all OCaml 5 needs here.

   Overload never stalls the accept loop: Admission.try_admit is
   non-blocking, and a rejected frame is answered with RETRY_LATER
   right from the IO domain.  Responses may be written out of request
   order (workers finish independently); clients match on request id.

   Graceful drain (SIGINT/SIGTERM or the [stop] atomic): close the
   listen socket, stop reading, let the workers drain the queue and
   write every in-flight response, then close connections, run the
   Shutdown cleanups (the --metrics flush) and return — exit 0, not a
   signal death. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; [ready] reports it *)
  workers : int;
  jobs : int;
  queue_capacity : int;
  inflight_cap : int;
  max_connections : int;
  batch_max : int;
  trace_rate : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    (* one IO domain + workers; leave the caller's core to IO on small
       machines *)
    workers = max 1 (Domain.recommended_domain_count () - 1);
    jobs = 1;
    queue_capacity = 4096;
    inflight_cap = 1024;
    max_connections = 256;
    batch_max = 512;
    trace_rate = 0.;
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  mutable rbuf : Bytes.t;
  mutable rstart : int;  (* consumed prefix *)
  mutable rlen : int;  (* valid bytes from rstart *)
  wm : Mutex.t;
  mutable closed : bool;  (* guarded by wm *)
  slots : Admission.slots;
}

(* [enqueued_ns] is monotonic (Monotonic.now_ns), not wall time: an
   NTP step between enqueue and drain must not produce negative or
   skewed queue-wait observations, and the tracer's slices need the
   same clock.  [trace] is the request's tracing context — either
   propagated by the client in the wire header or sampled here. *)
type job = {
  jconn : conn;
  frame : Wire.frame;
  enqueued_ns : int;
  trace : int option;
}

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

(* Request traffic depends on clients and scheduling, so every serve
   instrument lives in the approx section; the deterministic section
   stays reserved for seed-reproducible workload counts. *)
let c_requests op =
  Metrics.counter ~approx:true ("serve.requests." ^ Protocol.opcode_name op)

let c_retry = lazy (Metrics.counter ~approx:true "serve.retry_later")
let c_wire_errors = lazy (Metrics.counter ~approx:true "serve.wire_errors")
let c_oversized =
  lazy (Metrics.counter ~approx:true "serve.oversized_responses")
let c_conns = lazy (Metrics.counter ~approx:true "serve.connections")
let c_conns_rejected =
  lazy (Metrics.counter ~approx:true "serve.connections_rejected")
let g_open = lazy (Metrics.gauge ~approx:true "serve.conns_open")

let latency_bounds =
  [| 50; 100; 200; 500; 1000; 2000; 5000; 10000; 50000; 100000; 1000000 |]

let h_latency =
  lazy (Metrics.histogram ~approx:true ~bounds:latency_bounds "serve.latency_us")

let h_queue_wait =
  lazy
    (Metrics.histogram ~approx:true ~bounds:latency_bounds
       "serve.queue_wait_us")

let when_metrics f = if Metrics.is_enabled () then f ()

(* Server-sampled trace ids live in their own namespace (bit 60) so
   they can never collide with client-chosen ids, which the load
   generator tags with bit 61. *)
let server_trace_tag = 1 lsl 60
let trace_sample_counter = Atomic.make 0

(* [--trace-rate r] becomes "trace every k-th untraced request".
   Counter sampling (not a PRNG) keeps the IO loop deterministic and
   allocation-free. *)
let trace_every_of_rate r =
  if r <= 0. then 0 else max 1 (int_of_float (Float.round (1. /. Float.min 1. r)))

(* ------------------------------------------------------------------ *)
(* Connection writes                                                   *)

(* All bytes or raise; blocking sockets only short-write on signals. *)
let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Best-effort: a peer that vanished mid-response is closed and
   forgotten, never an exception into the worker. *)
let send conn s =
  Mutex.protect conn.wm (fun () ->
      if not conn.closed then
        try write_all conn.fd s
        with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          conn.closed <- true)

(* ------------------------------------------------------------------ *)
(* Worker loop                                                         *)

(* Handlers.handle already folds non-fatal exceptions into typed
   [Internal] errors; this is the fatal backstop.  Out_of_memory while
   materialising one oversized response must not kill the worker
   domain silently — with workers=1 that would stop the server while
   admitted jobs keep their in-flight slots forever.  Answer the
   request, log loudly, keep serving. *)
let handle_guarded handlers req =
  match Span.with_ "serve.handle" (fun () -> Handlers.handle handlers req) with
  | resp -> resp
  | exception e ->
      Logger.err
        ~fields:[ ("exn", Printexc.to_string e) ]
        "serve: fatal exception in a handler; answering INTERNAL";
      Protocol.Error (Protocol.Internal (Printexc.to_string e))

(* A response whose payload cannot ride a frame (a Simulate trace or
   rejection list past Wire.max_payload) must become a typed error,
   not an [Invalid_argument] out of [Wire.encode_into]. *)
let encodable_payload resp =
  let (_, payload) as r = Protocol.encode_response_payload resp in
  if String.length payload <= Wire.max_payload then r
  else begin
    when_metrics (fun () -> Metrics.incr (Lazy.force c_oversized));
    Logger.warn
      ~fields:[ ("bytes", string_of_int (String.length payload)) ]
      "serve: response exceeds the frame limit; answering INTERNAL";
    Protocol.encode_response_payload
      (Protocol.Error
         (Protocol.Internal "response exceeds the wire frame limit"))
  end

let worker handlers queue batch_max ~io_tid =
  let run_batch jobs =
    let t_drain = Monotonic.now_ns () in
    (* The first traced job lends its context to the batch-level
       slices — batching is shared work, so the trace shows the batch
       the traced request actually rode in. *)
    let batch_trace = List.find_map (fun j -> j.trace) jobs in
    List.iter
      (fun j ->
        when_metrics (fun () ->
            Metrics.observe (Lazy.force h_queue_wait)
              ((t_drain - j.enqueued_ns) / 1000));
        match j.trace with
        | Some t ->
            (* Rendered on the IO domain's timeline: the wait happened
               between the IO domain's dispatch and this drain, and
               putting it there keeps the worker row to actual work. *)
            Tracer.complete_slice ~trace:t ~tid:io_tid ~t1_ns:t_drain
              ~t0_ns:j.enqueued_ns "serve.queue_wait"
        | None -> ())
      jobs;
    (* Decode, then group by decoded request: every group is
       answered by one evaluation, its shared payload encoded once
       and stamped with each request's id. *)
    let t_decode = Monotonic.now_ns () in
    let decoded =
      List.map (fun j -> (j, Protocol.decode_request j.frame)) jobs
    in
    (match batch_trace with
    | Some t -> Tracer.complete_slice ~trace:t ~t0_ns:t_decode "serve.decode"
    | None -> ());
    let groups = Batcher.group snd decoded in
    let out : (int, conn * Buffer.t) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (key, items) ->
        let eval () =
          match key with
          | Error code -> Protocol.Error code
          | Ok req ->
              Batcher.observe_batch (Handlers.batcher handlers)
                (List.length items);
              handle_guarded handlers req
        in
        let resp =
          (* Install the group's trace context so the engine-side
             spans (serve.handle, run_par, vcompile) tag their events
             with the request that caused them. *)
          match List.find_map (fun ((j : job), _) -> j.trace) items with
          | None -> eval ()
          | Some _ as gtrace -> Tracer.with_context gtrace eval
        in
        let opcode, payload = encodable_payload resp in
        List.iter
          (fun ((j : job), _) ->
            let conn = j.jconn in
            let buf =
              match Hashtbl.find_opt out conn.cid with
              | Some (_, b) -> b
              | None ->
                  let b = Buffer.create 256 in
                  Hashtbl.replace out conn.cid (conn, b);
                  b
            in
            Wire.encode_into buf
              { Wire.id = j.frame.Wire.id; opcode; trace = j.trace; payload };
            when_metrics (fun () ->
                Metrics.observe (Lazy.force h_latency)
                  ((Monotonic.now_ns () - j.enqueued_ns) / 1000)))
          items)
      groups;
    (match batch_trace with
    | Some t ->
        Tracer.complete_slice ~trace:t
          ~args:[ ("batch_size", List.length jobs) ]
          ~t0_ns:t_drain "serve.batch"
    | None -> ());
    (* one write per connection per batch *)
    let t_write = Monotonic.now_ns () in
    Hashtbl.iter (fun _ (conn, b) -> send conn (Buffer.contents b)) out;
    match batch_trace with
    | Some t -> Tracer.complete_slice ~trace:t ~t0_ns:t_write "serve.write"
    | None -> ()
  in
  let rec loop () =
    match Admission.pop_batch queue ~max:batch_max with
    | [] -> () (* closed and drained *)
    | jobs ->
        (* Slots are released whatever happens to the batch: a leaked
           slot would pin its connection at the in-flight cap forever. *)
        Fun.protect
          ~finally:(fun () ->
            List.iter (fun j -> Admission.release j.jconn.slots) jobs)
          (fun () -> run_batch jobs);
        loop ()
  in
  (* Anything escaping the guards above is a bug; dying loudly beats a
     silent worker loss. *)
  try loop ()
  with e ->
    Logger.err
      ~fields:[ ("exn", Printexc.to_string e) ]
      "serve: worker domain died";
    raise e

(* ------------------------------------------------------------------ *)
(* IO loop                                                             *)

let retry_later_payload = lazy (Protocol.encode_response_payload Protocol.Retry_later)

let dispatch ~trace_every queue conn (frame : Wire.frame) =
  when_metrics (fun () -> Metrics.incr (c_requests frame.Wire.opcode));
  let trace =
    match frame.Wire.trace with
    | Some t ->
        (* Client-propagated context: stitch its flow arrow into the
           server timeline right at ingress. *)
        Tracer.flow_step ~trace:t ~id:t "req";
        Tracer.instant ~trace:t "serve.ingress";
        Some t
    | None ->
        if trace_every > 0 && Tracer.is_enabled () then begin
          let n = Atomic.fetch_and_add trace_sample_counter 1 in
          if n mod trace_every = 0 then begin
            let t = server_trace_tag lor n in
            Tracer.instant ~trace:t "serve.ingress";
            Some t
          end
          else None
        end
        else None
  in
  let job = { jconn = conn; frame; enqueued_ns = Monotonic.now_ns (); trace } in
  match Admission.try_admit queue conn.slots job with
  | Admission.Admitted -> ()
  | Admission.Queue_full | Admission.Conn_saturated ->
      when_metrics (fun () -> Metrics.incr (Lazy.force c_retry));
      let opcode, payload = Lazy.force retry_later_payload in
      send conn
        (Wire.encode
           { Wire.id = frame.Wire.id; opcode; trace = frame.Wire.trace; payload })

(* Parse every complete frame in the connection's buffer.  Returns
   [false] when the connection must be closed (framing lost). *)
let parse_frames ~trace_every queue conn =
  let ok = ref true and continue = ref true in
  while !continue do
    match
      Wire.decode conn.rbuf ~pos:conn.rstart ~len:(conn.rstart + conn.rlen)
    with
    | Wire.Frame (frame, consumed) ->
        conn.rstart <- conn.rstart + consumed;
        conn.rlen <- conn.rlen - consumed;
        dispatch ~trace_every queue conn frame
    | Wire.Need _ -> continue := false
    | Wire.Fail e ->
        when_metrics (fun () -> Metrics.incr (Lazy.force c_wire_errors));
        Logger.warn
          ~fields:[ ("conn", string_of_int conn.cid) ]
          ("wire error: " ^ Wire.error_to_string e);
        ok := false;
        continue := false
  done;
  (* compact: keep the unparsed suffix at the front *)
  if conn.rstart > 0 then begin
    if conn.rlen > 0 then Bytes.blit conn.rbuf conn.rstart conn.rbuf 0 conn.rlen;
    conn.rstart <- 0
  end;
  !ok

let read_into conn =
  (* grow so at least one header (or the pending frame) can land *)
  let cap = Bytes.length conn.rbuf in
  if conn.rstart + conn.rlen = cap then begin
    let need = max (2 * cap) (conn.rlen + 65536) in
    let need = min need (Wire.header_size + Wire.max_payload + 65536) in
    if need > cap then begin
      let nb = Bytes.create need in
      Bytes.blit conn.rbuf conn.rstart nb 0 conn.rlen;
      conn.rbuf <- nb;
      conn.rstart <- 0
    end
  end;
  let off = conn.rstart + conn.rlen in
  match Unix.read conn.fd conn.rbuf off (Bytes.length conn.rbuf - off) with
  | 0 -> `Eof
  | n ->
      conn.rlen <- conn.rlen + n;
      `Read
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Read
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof

(* [Unix.inet_addr_of_string] accepts only numeric addresses and
   raises a bare [Failure _] on names; fall through to getaddrinfo so
   "localhost" (server bind and loadgen connect alike) resolves.  IPv4
   only — both ends open PF_INET sockets. *)
let resolve_addr ~host ~port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> (
      let candidates =
        try
          Unix.getaddrinfo host ""
            [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
        with Unix.Unix_error _ -> []
      in
      match
        List.find_map
          (function
            | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } -> Some addr
            | _ -> None)
          candidates
      with
      | Some addr -> Unix.ADDR_INET (addr, port)
      | None -> failwith (Printf.sprintf "cannot resolve host %S" host))

let run ?(stop = Atomic.make false) ?(install_signals = true) ?ready config =
  if config.workers < 1 then invalid_arg "Server.run: workers < 1";
  (* A client that disconnects with responses in flight must surface
     as EPIPE in [send], not kill the process. *)
  Shutdown.ignore_sigpipe ();
  if install_signals then
    Shutdown.install ~handler:(fun _ -> Atomic.set stop true) ();
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (resolve_addr ~host:config.host ~port:config.port);
  Unix.listen listen_fd 128;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  (match ready with None -> () | Some f -> f port);
  Logger.info
    ~fields:
      [
        ("port", string_of_int port);
        ("workers", string_of_int config.workers);
        ("queue", string_of_int config.queue_capacity);
      ]
    "serve: listening";
  let queue =
    Admission.create ~capacity:config.queue_capacity
      ~inflight_cap:config.inflight_cap ()
  in
  Pool.with_pool ~jobs:config.jobs @@ fun pool ->
  let handlers = Handlers.create ~pool () in
  let io_tid = (Domain.self () :> int) in
  let trace_every = trace_every_of_rate config.trace_rate in
  let workers =
    List.init config.workers (fun _ ->
        Domain.spawn (fun () -> worker handlers queue config.batch_max ~io_tid))
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 32 in
  let next_cid = ref 0 in
  let close_conn conn =
    Mutex.protect conn.wm (fun () -> conn.closed <- true);
    Hashtbl.remove conns conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    when_metrics (fun () ->
        Metrics.set_gauge (Lazy.force g_open) (Hashtbl.length conns))
  in
  let accept_one () =
    match Unix.accept listen_fd with
    | fd, _addr ->
        if Hashtbl.length conns >= config.max_connections then begin
          when_metrics (fun () -> Metrics.incr (Lazy.force c_conns_rejected));
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          Unix.setsockopt fd Unix.TCP_NODELAY true;
          incr next_cid;
          let conn =
            {
              fd;
              cid = !next_cid;
              rbuf = Bytes.create 65536;
              rstart = 0;
              rlen = 0;
              wm = Mutex.create ();
              closed = false;
              slots = Admission.slots queue;
            }
          in
          Hashtbl.replace conns fd conn;
          when_metrics (fun () ->
              Metrics.incr (Lazy.force c_conns);
              Metrics.set_gauge (Lazy.force g_open) (Hashtbl.length conns))
        end
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
  in
  (* main select loop *)
  let continue = ref true in
  while !continue do
    if Atomic.get stop then continue := false
    else begin
      let fds = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      match Unix.select fds [] [] 0.2 with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = listen_fd then accept_one ()
              else
                match Hashtbl.find_opt conns fd with
                | None -> ()
                | Some conn -> (
                    match read_into conn with
                    | `Eof -> close_conn conn
                    | `Read ->
                        if not (parse_frames ~trace_every queue conn) then
                          close_conn conn))
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  (* graceful drain: no new connections or frames; the workers finish
     everything already admitted, then exit on the closed queue. *)
  Logger.info ~fields:[ ("port", string_of_int port) ] "serve: draining";
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Admission.close queue;
  List.iter Domain.join workers;
  Hashtbl.iter (fun _ conn -> Mutex.protect conn.wm (fun () -> conn.closed <- true)) conns;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
  Logger.info ~fields:[ ("port", string_of_int port) ] "serve: drained";
  Shutdown.run_cleanups ()
