(* Open-loop latency load generator.

   One domain per connection, each pipelining up to [window] requests
   on a blocking socket and matching responses by request id.  All
   connections send the *same* request: a certification service's hot
   load is many clients asking about few instances, and identical
   concurrent requests are exactly what the server's batching layer
   coalesces into single engine sweeps — this harness measures that
   path on purpose (BENCH_SERVE.json records the request so the run is
   reproducible).

   With [rate = Some r] each connection paces its sends against the
   wall clock (its share is [r / connections]); unpaced, the window is
   kept full — saturation throughput.  Latency is response arrival
   minus send time, in microseconds, one sample per request including
   RETRY_LATER and error responses (a typed overload answer is still
   an answer; its latency is the admission path's latency). *)

type config = {
  host : string;
  port : int;
  connections : int;
  window : int;
  total : int;  (** total requests across all connections *)
  rate : int option;  (** total requests/s across all connections *)
  request : Protocol.request;
  trace_rate : float;  (** fraction of requests sent with a trace id *)
}

(* Client-chosen trace ids carry bit 61 (servers sample under bit 60),
   then the connection index and the per-connection sequence number —
   collision-free across connections without coordination. *)
let client_trace_tag = 1 lsl 61

let trace_every_of_rate r =
  if r <= 0. then 0 else max 1 (int_of_float (Float.round (1. /. Float.min 1. r)))

type stats = {
  sent : int;
  ok : int;
  retry_later : int;
  errors : int;
  duration_s : float;
  latencies_us : float array;  (** sorted ascending, one per response *)
}

type outcome = { mutable n_ok : int; mutable n_retry : int; mutable n_err : int }

let classify out = function
  | Ok Protocol.Retry_later -> out.n_retry <- out.n_retry + 1
  | Ok (Protocol.Error _) | Error _ -> out.n_err <- out.n_err + 1
  | Ok _ -> out.n_ok <- out.n_ok + 1

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* One connection's run: returns (outcome counts, latencies in
   completion order).  [per_conn] requests, ids [0 .. per_conn-1]. *)
let client cfg ~conn_id ~per_conn ~per_conn_rate =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Server.resolve_addr ~host:cfg.host ~port:cfg.port);
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  let template = Protocol.encode_request ~id:0 cfg.request in
  let out = { n_ok = 0; n_retry = 0; n_err = 0 } in
  let lat = Array.make (max per_conn 1) 0.0 in
  let send_times = Array.make (max per_conn 1) 0.0 in
  let trace_every =
    if Tracer.is_enabled () then trace_every_of_rate cfg.trace_rate else 0
  in
  (* Monotonic send stamps and ids for traced requests only — the
     untraced path keeps its allocation profile. *)
  let send_ns = if trace_every > 0 then Array.make (max per_conn 1) 0 else [||] in
  let trace_of =
    if trace_every > 0 then Array.make (max per_conn 1) (-1) else [||]
  in
  let sent = ref 0 and recvd = ref 0 in
  let rbuf = ref (Bytes.create 65536) in
  let rstart = ref 0 and rlen = ref 0 in
  let wbuf = Buffer.create 4096 in
  let start = Unix.gettimeofday () in
  let read_some () =
    (* grow if the pending frame cannot fit *)
    if !rstart + !rlen = Bytes.length !rbuf then begin
      if !rstart > 0 then begin
        Bytes.blit !rbuf !rstart !rbuf 0 !rlen;
        rstart := 0
      end
      else begin
        let nb = Bytes.create (2 * Bytes.length !rbuf) in
        Bytes.blit !rbuf 0 nb 0 !rlen;
        rbuf := nb
      end
    end;
    let off = !rstart + !rlen in
    match Unix.read fd !rbuf off (Bytes.length !rbuf - off) with
    | 0 -> failwith "loadgen: server closed the connection"
    | n -> rlen := !rlen + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let parse_frames () =
    let continue = ref true in
    while !continue do
      match Wire.decode !rbuf ~pos:!rstart ~len:(!rstart + !rlen) with
      | Wire.Frame (frame, consumed) ->
          rstart := !rstart + consumed;
          rlen := !rlen - consumed;
          let id = frame.Wire.id in
          if id < 0 || id >= per_conn then
            failwith "loadgen: response id out of range";
          lat.(!recvd) <-
            (Unix.gettimeofday () -. send_times.(id)) *. 1e6;
          if trace_every > 0 && trace_of.(id) >= 0 then begin
            (* client-observed round trip, stitched to the server's
               slices by the echoed trace id *)
            let t = trace_of.(id) in
            Tracer.complete_slice ~trace:t ~t0_ns:send_ns.(id) "client.rtt";
            Tracer.flow_end ~trace:t ~id:t "req"
          end;
          classify out (Protocol.decode_response frame);
          incr recvd
      | Wire.Need _ -> continue := false
      | Wire.Fail e -> failwith ("loadgen: " ^ Wire.error_to_string e)
    done;
    if !rstart > 0 && !rlen = 0 then rstart := 0
  in
  while !recvd < per_conn do
    (* how many sends the window (and the pacing schedule) allow now *)
    let can_send =
      min (per_conn - !sent) (cfg.window - (!sent - !recvd))
    in
    let can_send =
      match per_conn_rate with
      | None -> can_send
      | Some r ->
          let due =
            int_of_float ((Unix.gettimeofday () -. start) *. float_of_int r)
            + 1 - !sent
          in
          min can_send (max 0 due)
    in
    if can_send > 0 then begin
      Buffer.clear wbuf;
      for _ = 1 to can_send do
        send_times.(!sent) <- Unix.gettimeofday ();
        if trace_every > 0 && !sent mod trace_every = 0 then begin
          let t = client_trace_tag lor (conn_id lsl 24) lor !sent in
          trace_of.(!sent) <- t;
          send_ns.(!sent) <- Monotonic.now_ns ();
          Tracer.flow_start ~trace:t ~id:t "req";
          Tracer.instant ~trace:t "client.send";
          Wire.encode_into wbuf { template with Wire.id = !sent; trace = Some t }
        end
        else Wire.encode_into wbuf { template with Wire.id = !sent };
        incr sent
      done;
      write_all fd (Buffer.contents wbuf)
    end;
    if !recvd < per_conn then
      if !sent > !recvd then begin
        read_some ();
        parse_frames ()
      end
      else
        (* paced and idle: sleep toward the next scheduled send *)
        Unix.sleepf 0.0005
  done;
  (out, lat)

(* One request, one response, over a fresh connection — the CLI's
   remote-stats path and the differential tests' client. *)
let request_once ~host ~port req =
  Shutdown.ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  match Unix.connect fd (Server.resolve_addr ~host ~port) with
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))
  | () -> (
      write_all fd (Wire.encode (Protocol.encode_request ~id:0 req));
      let buf = ref (Bytes.create 65536) in
      let len = ref 0 in
      let rec recv () =
        match Wire.decode !buf ~pos:0 ~len:!len with
        | Wire.Frame (frame, _) -> Ok frame
        | Wire.Fail e -> Error (Wire.error_to_string e)
        | Wire.Need _ -> (
            if !len = Bytes.length !buf then begin
              let nb = Bytes.create (2 * Bytes.length !buf) in
              Bytes.blit !buf 0 nb 0 !len;
              buf := nb
            end;
            match Unix.read fd !buf !len (Bytes.length !buf - !len) with
            | 0 -> Error "server closed the connection"
            | n ->
                len := !len + n;
                recv ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ())
      in
      match recv () with
      | Error _ as e -> e
      | Ok frame ->
          if frame.Wire.id <> 0 then Error "response id mismatch"
          else Protocol.decode_response frame)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let run cfg =
  Shutdown.ignore_sigpipe ();
  if cfg.connections < 1 then invalid_arg "Loadgen.run: connections < 1";
  if cfg.window < 1 then invalid_arg "Loadgen.run: window < 1";
  if cfg.total < 1 then invalid_arg "Loadgen.run: total < 1";
  let base = cfg.total / cfg.connections
  and extra = cfg.total mod cfg.connections in
  let per_conn_rate =
    Option.map
      (fun r -> max 1 (r / cfg.connections))
      cfg.rate
  in
  let start = Unix.gettimeofday () in
  let domains =
    List.init cfg.connections (fun i ->
        let per_conn = base + if i < extra then 1 else 0 in
        Domain.spawn (fun () ->
            if per_conn = 0 then ({ n_ok = 0; n_retry = 0; n_err = 0 }, [||])
            else client cfg ~conn_id:i ~per_conn ~per_conn_rate))
  in
  let results = List.map Domain.join domains in
  let duration_s = Unix.gettimeofday () -. start in
  let sent = List.fold_left (fun a (_, l) -> a + Array.length l) 0 results in
  let ok = List.fold_left (fun a (o, _) -> a + o.n_ok) 0 results in
  let retry_later = List.fold_left (fun a (o, _) -> a + o.n_retry) 0 results in
  let errors = List.fold_left (fun a (o, _) -> a + o.n_err) 0 results in
  let latencies_us = Array.concat (List.map snd results) in
  Array.sort compare latencies_us;
  { sent; ok; retry_later; errors; duration_s; latencies_us }

let opcode_string = function
  | Protocol.Ping -> "ping"
  | Protocol.Certify _ -> "certify"
  | Protocol.Verify _ -> "verify"
  | Protocol.Simulate _ -> "simulate"
  | Protocol.Attack _ -> "attack"
  | Protocol.Stats -> "stats"

let to_run ~label ~scheme ~graph cfg (s : stats) : Bench_schema.run =
  {
    Bench_schema.label;
    opcode = opcode_string cfg.request;
    scheme;
    graph;
    connections = cfg.connections;
    window = cfg.window;
    rate = cfg.rate;
    sent = s.sent;
    ok = s.ok;
    retry_later = s.retry_later;
    errors = s.errors;
    duration_s = s.duration_s;
    throughput_rps =
      (if s.duration_s > 0. then float_of_int s.sent /. s.duration_s else 0.);
    p50_us = percentile s.latencies_us 0.50;
    p99_us = percentile s.latencies_us 0.99;
    p999_us = percentile s.latencies_us 0.999;
    max_us = percentile s.latencies_us 1.0;
  }

(* Boot an in-process server on an ephemeral port, run [f ~port], then
   drain it.  This is what `localcert loadgen --self` and `make
   bench-serve` use: one command, no port coordination, and the drain
   path gets exercised on every bench run. *)
let with_self_server ?(config = Server.default_config) f =
  let stop = Atomic.make false in
  let port_cell = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        Server.run ~stop ~install_signals:false
          ~ready:(fun p -> Atomic.set port_cell p)
          { config with port = 0 })
  in
  let rec wait_port tries =
    match Atomic.get port_cell with
    | 0 ->
        if tries > 5000 then failwith "loadgen: server never came up";
        Unix.sleepf 0.001;
        wait_port (tries + 1)
    | p -> p
  in
  let finish () =
    Atomic.set stop true;
    Domain.join server
  in
  match f ~port:(wait_port 0) with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e
