(** Open-loop latency load generator for the certification server.

    One domain per connection, each pipelining up to [window] requests
    and matching responses by id.  Every connection sends the same
    request — many clients asking about few instances is the service's
    hot shape, and it is exactly what the server's batcher coalesces;
    this harness measures that path deliberately.  Results go into
    [BENCH_SERVE.json] via {!Bench_schema}. *)

type config = {
  host : string;
  port : int;
  connections : int;
  window : int;  (** per-connection pipeline depth *)
  total : int;  (** total requests across all connections *)
  rate : int option;
      (** total requests/s pacing across all connections; [None]
          keeps every window full (saturation) *)
  request : Protocol.request;
  trace_rate : float;
      (** fraction of requests stamped with a client trace id (wire
          header trace word + {!Localcert_obs.Tracer} send/recv
          events); effective only while the tracer is enabled *)
}

type stats = {
  sent : int;
  ok : int;
  retry_later : int;
  errors : int;
  duration_s : float;
  latencies_us : float array;
      (** sorted ascending; one sample per response, RETRY_LATER and
          error responses included (a typed overload answer is still
          an answer) *)
}

val run : config -> stats
(** Raises [Invalid_argument] on non-positive connections, window or
    total; [Failure] if the server closes a connection or breaks
    framing mid-run. *)

val request_once :
  host:string -> port:int -> Protocol.request ->
  (Protocol.response, string) result
(** One request, one response, over a fresh connection — the CLI's
    remote-stats path and the differential tests' client. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0..1]; [q = 1.0] is the max,
    empty arrays give [0.0]. *)

val opcode_string : Protocol.request -> string

val to_run :
  label:string -> scheme:string -> graph:string -> config -> stats ->
  Bench_schema.run

val with_self_server :
  ?config:Server.config -> (port:int -> 'a) -> 'a
(** Boot an in-process {!Server} on an ephemeral port (the [port]
    field of [config] is overridden with 0), run the callback, then
    stop and drain the server — even if the callback raises. *)
