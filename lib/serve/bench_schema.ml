type run = {
  label : string;
  opcode : string;
  scheme : string;
  graph : string;
  connections : int;
  window : int;
  rate : int option;
  sent : int;
  ok : int;
  retry_later : int;
  errors : int;
  duration_s : float;
  throughput_rps : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
}

type doc = { smoke : bool; workers : int; runs : run list }

(* ------------------------------------------------------------------ *)
(* Rendering — canonical shortest-roundtrip numbers via Obs.Json, so
   render ∘ parse is a fixpoint (the artifact guard test relies on
   byte-stability).                                                    *)

let render_run b (r : run) =
  Buffer.add_string b
    (Printf.sprintf
       "    {\n\
       \      \"label\": \"%s\",\n\
       \      \"opcode\": \"%s\",\n\
       \      \"scheme\": \"%s\",\n\
       \      \"graph\": \"%s\",\n\
       \      \"connections\": %d,\n\
       \      \"window\": %d,\n"
       (Json.escape r.label) (Json.escape r.opcode) (Json.escape r.scheme)
       (Json.escape r.graph) r.connections r.window);
  (match r.rate with
  | None -> ()
  | Some rate -> Buffer.add_string b (Printf.sprintf "      \"rate\": %d,\n" rate));
  Buffer.add_string b
    (Printf.sprintf
       "      \"sent\": %d,\n\
       \      \"ok\": %d,\n\
       \      \"retry_later\": %d,\n\
       \      \"errors\": %d,\n\
       \      \"duration_s\": %s,\n\
       \      \"throughput_rps\": %s,\n\
       \      \"p50_us\": %s,\n\
       \      \"p99_us\": %s,\n\
       \      \"p999_us\": %s,\n\
       \      \"max_us\": %s\n\
       \    }"
       r.sent r.ok r.retry_later r.errors (Json.num r.duration_s)
       (Json.num r.throughput_rps) (Json.num r.p50_us) (Json.num r.p99_us)
       (Json.num r.p999_us) (Json.num r.max_us))

let render (d : doc) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"smoke\": %b,\n  \"workers\": %d,\n  \"runs\": [\n"
       d.smoke d.workers);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      render_run b r)
    d.runs;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Strict decoding                                                     *)

exception Bad of string

let field obj name =
  match List.assoc_opt name obj with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" name))

let check_fields obj allowed ctx =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        raise (Bad (Printf.sprintf "unexpected field %S in %s" k ctx)))
    obj

let as_obj ctx = function
  | Json.Obj o -> o
  | _ -> raise (Bad (ctx ^ ": expected an object"))

let as_arr ctx = function
  | Json.Arr a -> a
  | _ -> raise (Bad (ctx ^ ": expected an array"))

let as_num ctx = function
  | Json.Num f ->
      if not (Float.is_finite f) then raise (Bad (ctx ^ ": non-finite"));
      f
  | _ -> raise (Bad (ctx ^ ": expected a number"))

let as_nonneg ctx v =
  let f = as_num ctx v in
  if f < 0. then raise (Bad (ctx ^ ": negative"));
  f

let as_int ctx v =
  let f = as_num ctx v in
  if not (Float.is_integer f) then raise (Bad (ctx ^ ": expected an integer"));
  int_of_float f

let as_nonneg_int ctx v =
  let i = as_int ctx v in
  if i < 0 then raise (Bad (ctx ^ ": negative"));
  i

let as_str ctx = function
  | Json.Str s when s <> "" -> s
  | Json.Str _ -> raise (Bad (ctx ^ ": empty string"))
  | _ -> raise (Bad (ctx ^ ": expected a string"))

let decode_run j =
  let o = as_obj "run" j in
  check_fields o
    [
      "label"; "opcode"; "scheme"; "graph"; "connections"; "window"; "rate";
      "sent"; "ok"; "retry_later"; "errors"; "duration_s"; "throughput_rps";
      "p50_us"; "p99_us"; "p999_us"; "max_us";
    ]
    "run";
  let label = as_str "label" (field o "label") in
  let ctx msg = Printf.sprintf "run %s: %s" label msg in
  let connections = as_nonneg_int "connections" (field o "connections") in
  if connections < 1 then raise (Bad (ctx "connections must be positive"));
  let window = as_nonneg_int "window" (field o "window") in
  if window < 1 then raise (Bad (ctx "window must be positive"));
  let r =
    {
      label;
      opcode = as_str "opcode" (field o "opcode");
      scheme = as_str "scheme" (field o "scheme");
      graph = as_str "graph" (field o "graph");
      connections;
      window;
      rate = Option.map (as_nonneg_int "rate") (List.assoc_opt "rate" o);
      sent = as_nonneg_int "sent" (field o "sent");
      ok = as_nonneg_int "ok" (field o "ok");
      retry_later = as_nonneg_int "retry_later" (field o "retry_later");
      errors = as_nonneg_int "errors" (field o "errors");
      duration_s = as_nonneg "duration_s" (field o "duration_s");
      throughput_rps = as_nonneg "throughput_rps" (field o "throughput_rps");
      p50_us = as_nonneg "p50_us" (field o "p50_us");
      p99_us = as_nonneg "p99_us" (field o "p99_us");
      p999_us = as_nonneg "p999_us" (field o "p999_us");
      max_us = as_nonneg "max_us" (field o "max_us");
    }
  in
  (* every request the loadgen sends is answered exactly once (typed
     overload included), so the outcome counts must tile [sent] *)
  if r.ok + r.retry_later + r.errors <> r.sent then
    raise (Bad (ctx "ok + retry_later + errors must equal sent"));
  (* percentile monotonicity: a latency distribution cannot invert *)
  if not (r.p50_us <= r.p99_us && r.p99_us <= r.p999_us && r.p999_us <= r.max_us)
  then raise (Bad (ctx "percentiles not monotone (p50 <= p99 <= p999 <= max)"));
  r

let decode_doc j =
  let o = as_obj "document" j in
  check_fields o [ "smoke"; "workers"; "runs" ] "document";
  let smoke =
    match field o "smoke" with
    | Json.Bool b -> b
    | _ -> raise (Bad "document: smoke must be a boolean")
  in
  let workers = as_nonneg_int "workers" (field o "workers") in
  if workers < 1 then raise (Bad "document: workers must be positive");
  let runs = List.map decode_run (as_arr "runs" (field o "runs")) in
  if runs = [] then raise (Bad "document: no runs");
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r : run) ->
      if Hashtbl.mem seen r.label then
        raise (Bad (Printf.sprintf "duplicate run label %S" r.label));
      Hashtbl.add seen r.label ())
    runs;
  { smoke; workers; runs }

let parse s =
  match decode_doc (Json.parse_exn s) with
  | d -> Ok d
  | exception Bad msg -> Error msg
  | exception Json.Error msg -> Error msg

let parse_exn s =
  match parse s with
  | Ok d -> d
  | Error msg -> invalid_arg ("Bench_schema.parse_exn: " ^ msg)

let find_run (d : doc) label =
  List.find_opt (fun (r : run) -> r.label = label) d.runs
