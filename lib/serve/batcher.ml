(* Coalescing of identical in-flight computations.

   A verify request is a pure function of its payload, so N concurrent
   requests for the same (scheme, instance) need one engine sweep, not
   N.  Coalescing happens at two granularities:

   - within a worker: the worker pops a queue batch and groups it by
     request ([group]), computing each distinct request once and
     fanning the response out — this is what makes the compiled-kernel
     single-slot cache in Vcompile fire once per batch;
   - across workers: [run] registers the computation in a shared
     in-flight table; a second worker that starts the same request
     while the first is still computing blocks on the leader's result
     instead of recomputing.

   The leader's exception (non-fatal or fatal alike) is propagated to
   every follower — a follower cannot distinguish "I computed and it
   raised" from "the leader computed and it raised", which is exactly
   the semantics coalescing promises. *)

type 'v cell = {
  m : Mutex.t;
  done_cv : Condition.t;
  mutable result : ('v, exn) result option;
  mutable followers : int;
}

type ('k, 'v) t = {
  table : ('k, 'v cell) Hashtbl.t;
  tm : Mutex.t;
  batch_hist : Metrics.histogram Lazy.t;
  coalesced : Metrics.counter Lazy.t;
}

let create () =
  {
    table = Hashtbl.create 64;
    tm = Mutex.create ();
    batch_hist =
      lazy
        (Metrics.histogram ~approx:true
           ~bounds:[| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]
           "serve.batch_size");
    coalesced = lazy (Metrics.counter ~approx:true "serve.coalesced");
  }

let observe_batch t size =
  if Metrics.is_enabled () then
    Metrics.observe (Lazy.force t.batch_hist) size

let run t key f =
  let role =
    Mutex.protect t.tm (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some cell ->
            cell.followers <- cell.followers + 1;
            `Follow cell
        | None ->
            let cell =
              {
                m = Mutex.create ();
                done_cv = Condition.create ();
                result = None;
                followers = 0;
              }
            in
            Hashtbl.replace t.table key cell;
            `Lead cell)
  in
  match role with
  | `Lead cell ->
      let result = match f () with v -> Ok v | exception e -> Error e in
      Mutex.protect t.tm (fun () -> Hashtbl.remove t.table key);
      Mutex.protect cell.m (fun () ->
          cell.result <- Some result;
          Condition.broadcast cell.done_cv);
      (match result with Ok v -> v | Error e -> raise e)
  | `Follow cell ->
      if Metrics.is_enabled () then Metrics.incr (Lazy.force t.coalesced);
      Mutex.lock cell.m;
      while cell.result = None do
        Condition.wait cell.done_cv cell.m
      done;
      let r = cell.result in
      Mutex.unlock cell.m;
      (match r with
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false)

(* Group a popped batch by key, preserving first-seen key order and
   per-key item order.  [('k * 'a list) list] with each group's items
   in arrival order. *)
let group key items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt tbl k with
      | Some l -> l := item :: !l
      | None ->
          Hashtbl.replace tbl k (ref [ item ]);
          order := k :: !order)
    items;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order
