(** Bounded MPMC work queue with overload admission control.

    Two limits, both decided at push time without ever blocking the IO
    domain: a global queue capacity (bounds total queueing delay) and a
    per-connection in-flight cap (bounds how much of the queue one
    client can own).  A rejected push becomes a RETRY_LATER response —
    overload is a typed, immediate signal to clients, not a stall or a
    timeout.  See DESIGN §5.6. *)

type 'a t

type decision = Admitted | Queue_full | Conn_saturated

type slots
(** One connection's in-flight accounting. *)

val create : capacity:int -> inflight_cap:int -> unit -> 'a t
(** Raises [Invalid_argument] unless both limits are ≥ 1. *)

val slots : 'a t -> slots
(** Fresh accounting for a new connection. *)

val try_admit : 'a t -> slots -> 'a -> decision
(** Charge the connection, then enqueue.  On [Admitted] the caller
    must arrange exactly one {!release} when the request completes;
    on rejection the charge has already been rolled back. *)

val release : slots -> unit
val inflight : slots -> int

val pop_batch : 'a t -> max:int -> 'a list
(** Block until at least one item is available (or the queue is
    closed), then drain up to [max] items without blocking.  Returns
    [[]] only after {!close} with the queue empty — the workers' exit
    signal.  Batch pops are what let the {!Batcher} coalesce identical
    requests under load while a lone request is served immediately. *)

val depth : 'a t -> int

val close : 'a t -> unit
(** Reject further pushes and wake all poppers; pending items still
    drain (graceful shutdown finishes in-flight work). *)
