(* Request/response types and their Bitbuf marshalling.

   Payloads are bit streams written with Bitbuf.Writer and packed into
   whole bytes (4-byte big-endian bit-length prefix, zero padding in
   the last byte).  Certificates and rejection lists therefore ride the
   exact codecs the schemes already use — the interned Cert_store
   representation on the server side is reached by decoding through
   the same Bitstring values the in-process paths share.

   Decoding is total: any Bitbuf.Decode_error, trailing bits, bad
   padding or out-of-range field becomes a typed [error_code], never an
   exception past Fatal.is_fatal.  The server answers a request that
   fails to decode with [Error code] on the same request id. *)

(* ------------------------------------------------------------------ *)
(* Opcodes                                                             *)

let op_ping = 0x01
let op_certify = 0x02
let op_verify = 0x03
let op_simulate = 0x04
let op_attack = 0x05
let op_stats = 0x06
let op_pong = 0x81
let op_verdict = 0x82
let op_sim = 0x83
let op_attacked = 0x84
let op_stats_text = 0x85
let op_retry_later = 0x90
let op_error = 0x91

let opcode_name op =
  match op with
  | 0x01 -> "ping"
  | 0x02 -> "certify"
  | 0x03 -> "verify"
  | 0x04 -> "simulate"
  | 0x05 -> "attack"
  | 0x06 -> "stats"
  | 0x81 -> "pong"
  | 0x82 -> "verdict"
  | 0x83 -> "sim"
  | 0x84 -> "attacked"
  | 0x85 -> "stats_text"
  | 0x90 -> "retry_later"
  | 0x91 -> "error"
  | _ -> Printf.sprintf "op_0x%02x" op

(* ------------------------------------------------------------------ *)
(* Types                                                               *)

type request =
  | Ping
  | Certify of { scheme : string; graph : string }
  | Verify of { scheme : string; graph : string; flip : (int * int) option }
  | Simulate of {
      scheme : string;
      graph : string;
      plan : string;
      rounds : int;
      seed : int;
    }
  | Attack of {
      scheme : string;
      graph : string;
      trials : int;
      max_bits : int;
      seed : int;
    }
  | Stats

type error_code =
  | Unknown_opcode of int
  | Bad_payload of string
  | Unknown_scheme of string
  | Bad_graph of string
  | Bad_plan of string
  | Bad_argument of string
  | Prover_declined
  | Internal of string

type response =
  | Pong
  | Verdict of {
      accepted : bool;
      max_bits : int;
      rejections : (int * string) list;
    }
  | Sim of { detected_at : int option; accepted : bool; trace : string }
  | Attacked of { trials : int; fooled : bool }
  | Stats_text of string
  | Retry_later
  | Error of error_code

let error_code_to_string = function
  | Unknown_opcode op -> Printf.sprintf "unknown opcode 0x%02x" op
  | Bad_payload msg -> "bad payload: " ^ msg
  | Unknown_scheme s -> Printf.sprintf "unknown scheme %S" s
  | Bad_graph msg -> "bad graph spec: " ^ msg
  | Bad_plan msg -> "bad fault plan: " ^ msg
  | Bad_argument msg -> "bad argument: " ^ msg
  | Prover_declined -> "prover declined (no-instance or unsupported size)"
  | Internal msg -> "internal error: " ^ msg

(* ------------------------------------------------------------------ *)
(* Bit payload <-> bytes                                               *)

(* 4-byte big-endian bit length, then the packed MSB-first bytes with
   zero padding — the padding is checked on decode so a payload has
   exactly one valid encoding. *)
let payload_of_bits bits =
  let len = Bitstring.length bits in
  let nbytes = (len + 7) / 8 in
  let b = Buffer.create (4 + nbytes) in
  Buffer.add_int32_be b (Int32.of_int len);
  for i = 0 to nbytes - 1 do
    let pos = 8 * i in
    let width = min 8 (len - pos) in
    let v = Bitstring.unsafe_extract bits ~pos ~width in
    Buffer.add_uint8 b (v lsl (8 - width))
  done;
  Buffer.contents b

exception Bad of string

let bits_of_payload s =
  if String.length s < 4 then raise (Bad "payload shorter than its header");
  let len = Int32.to_int (String.get_int32_be s 0) in
  if len < 0 then raise (Bad "negative bit length");
  let nbytes = (len + 7) / 8 in
  if String.length s <> 4 + nbytes then
    raise
      (Bad
         (Printf.sprintf "payload is %d bytes, bit length %d needs %d"
            (String.length s - 4) len nbytes));
  let data = Bytes.of_string (String.sub s 4 nbytes) in
  (* strict: padding bits of the last byte must be zero *)
  (if len land 7 <> 0 then
     let last = Bytes.get_uint8 data (nbytes - 1) in
     if last land ((1 lsl (8 - (len land 7))) - 1) <> 0 then
       raise (Bad "nonzero padding bits"));
  Bitstring.unsafe_of_bytes data ~len

(* ------------------------------------------------------------------ *)
(* Field codecs                                                        *)

let w_option w enc = function
  | None -> Bitbuf.Writer.bit w false
  | Some v ->
      Bitbuf.Writer.bit w true;
      enc w v

let r_option r dec = if Bitbuf.Reader.bit r then Some (dec r) else None

let w_pair w (a, b) =
  Bitbuf.Writer.nat w a;
  Bitbuf.Writer.nat w b

let r_pair r =
  let a = Bitbuf.Reader.nat r in
  let b = Bitbuf.Reader.nat r in
  (a, b)

let w_rejection w (v, reason) =
  Bitbuf.Writer.nat w v;
  Bitbuf.Writer.string w reason

let r_rejection r =
  let v = Bitbuf.Reader.nat r in
  let reason = Bitbuf.Reader.string r in
  (v, reason)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let encode_request ?trace ~id req =
  let w = Bitbuf.Writer.create () in
  let opcode =
    match req with
    | Ping -> op_ping
    | Certify { scheme; graph } ->
        Bitbuf.Writer.string w scheme;
        Bitbuf.Writer.string w graph;
        op_certify
    | Verify { scheme; graph; flip } ->
        Bitbuf.Writer.string w scheme;
        Bitbuf.Writer.string w graph;
        w_option w (fun w p -> w_pair w p) flip;
        op_verify
    | Simulate { scheme; graph; plan; rounds; seed } ->
        Bitbuf.Writer.string w scheme;
        Bitbuf.Writer.string w graph;
        Bitbuf.Writer.string w plan;
        Bitbuf.Writer.nat w rounds;
        Bitbuf.Writer.int w seed;
        op_simulate
    | Attack { scheme; graph; trials; max_bits; seed } ->
        Bitbuf.Writer.string w scheme;
        Bitbuf.Writer.string w graph;
        Bitbuf.Writer.nat w trials;
        Bitbuf.Writer.nat w max_bits;
        Bitbuf.Writer.int w seed;
        op_attack
    | Stats -> op_stats
  in
  {
    Wire.id;
    opcode;
    trace;
    payload = payload_of_bits (Bitbuf.Writer.contents w);
  }

let decode_request (f : Wire.frame) =
  match
    (* Opcode dispatch precedes payload parsing: an unknown opcode is
       [Unknown_opcode] even when its payload is also garbage, so a
       client probing the version surface gets the informative error. *)
    if
      not
        (List.mem f.Wire.opcode
           [ op_ping; op_certify; op_verify; op_simulate; op_attack; op_stats ])
    then raise Exit;
    let bits = bits_of_payload f.Wire.payload in
    let r = Bitbuf.Reader.of_bitstring bits in
    let req =
      if f.Wire.opcode = op_ping then Ping
      else if f.Wire.opcode = op_certify then begin
        let scheme = Bitbuf.Reader.string r in
        let graph = Bitbuf.Reader.string r in
        Certify { scheme; graph }
      end
      else if f.Wire.opcode = op_verify then begin
        let scheme = Bitbuf.Reader.string r in
        let graph = Bitbuf.Reader.string r in
        let flip = r_option r r_pair in
        Verify { scheme; graph; flip }
      end
      else if f.Wire.opcode = op_simulate then begin
        let scheme = Bitbuf.Reader.string r in
        let graph = Bitbuf.Reader.string r in
        let plan = Bitbuf.Reader.string r in
        let rounds = Bitbuf.Reader.nat r in
        let seed = Bitbuf.Reader.int r in
        if rounds < 1 then raise (Bad "rounds must be >= 1");
        Simulate { scheme; graph; plan; rounds; seed }
      end
      else if f.Wire.opcode = op_attack then begin
        let scheme = Bitbuf.Reader.string r in
        let graph = Bitbuf.Reader.string r in
        let trials = Bitbuf.Reader.nat r in
        let max_bits = Bitbuf.Reader.nat r in
        let seed = Bitbuf.Reader.int r in
        Attack { scheme; graph; trials; max_bits; seed }
      end
      else if f.Wire.opcode = op_stats then Stats
      else raise Exit
    in
    Bitbuf.Reader.expect_end r;
    req
  with
  | req -> Ok req
  | exception Exit -> Result.Error (Unknown_opcode f.Wire.opcode)
  | exception Bad msg -> Result.Error (Bad_payload msg)
  | exception Bitbuf.Decode_error msg -> Result.Error (Bad_payload msg)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let error_tag = function
  | Unknown_opcode _ -> 0
  | Bad_payload _ -> 1
  | Unknown_scheme _ -> 2
  | Bad_graph _ -> 3
  | Bad_plan _ -> 4
  | Bad_argument _ -> 5
  | Prover_declined -> 6
  | Internal _ -> 7

let encode_response_payload resp =
  let w = Bitbuf.Writer.create () in
  let opcode =
    match resp with
    | Pong -> op_pong
    | Verdict { accepted; max_bits; rejections } ->
        Bitbuf.Writer.bit w accepted;
        Bitbuf.Writer.nat w max_bits;
        Bitbuf.Writer.list w w_rejection rejections;
        op_verdict
    | Sim { detected_at; accepted; trace } ->
        w_option w (fun w n -> Bitbuf.Writer.nat w n) detected_at;
        Bitbuf.Writer.bit w accepted;
        Bitbuf.Writer.string w trace;
        op_sim
    | Attacked { trials; fooled } ->
        Bitbuf.Writer.nat w trials;
        Bitbuf.Writer.bit w fooled;
        op_attacked
    | Stats_text text ->
        Bitbuf.Writer.string w text;
        op_stats_text
    | Retry_later -> op_retry_later
    | Error code ->
        Bitbuf.Writer.nat w (error_tag code);
        (match code with
        | Unknown_opcode op -> Bitbuf.Writer.nat w op
        | Bad_payload m | Unknown_scheme m | Bad_graph m | Bad_plan m
        | Bad_argument m | Internal m ->
            Bitbuf.Writer.string w m
        | Prover_declined -> ());
        op_error
  in
  (opcode, payload_of_bits (Bitbuf.Writer.contents w))

let encode_response ?trace ~id resp =
  let opcode, payload = encode_response_payload resp in
  { Wire.id; opcode; trace; payload }

let decode_response (f : Wire.frame) =
  match
    let bits = bits_of_payload f.Wire.payload in
    let r = Bitbuf.Reader.of_bitstring bits in
    let resp =
      if f.Wire.opcode = op_pong then Pong
      else if f.Wire.opcode = op_verdict then begin
        let accepted = Bitbuf.Reader.bit r in
        let max_bits = Bitbuf.Reader.nat r in
        let rejections = Bitbuf.Reader.list r r_rejection in
        Verdict { accepted; max_bits; rejections }
      end
      else if f.Wire.opcode = op_sim then begin
        let detected_at = r_option r Bitbuf.Reader.nat in
        let accepted = Bitbuf.Reader.bit r in
        let trace = Bitbuf.Reader.string r in
        Sim { detected_at; accepted; trace }
      end
      else if f.Wire.opcode = op_attacked then begin
        let trials = Bitbuf.Reader.nat r in
        let fooled = Bitbuf.Reader.bit r in
        Attacked { trials; fooled }
      end
      else if f.Wire.opcode = op_stats_text then
        Stats_text (Bitbuf.Reader.string r)
      else if f.Wire.opcode = op_retry_later then Retry_later
      else if f.Wire.opcode = op_error then begin
        let tag = Bitbuf.Reader.nat r in
        let code =
          match tag with
          | 0 -> Unknown_opcode (Bitbuf.Reader.nat r)
          | 1 -> Bad_payload (Bitbuf.Reader.string r)
          | 2 -> Unknown_scheme (Bitbuf.Reader.string r)
          | 3 -> Bad_graph (Bitbuf.Reader.string r)
          | 4 -> Bad_plan (Bitbuf.Reader.string r)
          | 5 -> Bad_argument (Bitbuf.Reader.string r)
          | 6 -> Prover_declined
          | 7 -> Internal (Bitbuf.Reader.string r)
          | t -> raise (Bad (Printf.sprintf "unknown error tag %d" t))
        in
        Error code
      end
      else raise Exit
    in
    Bitbuf.Reader.expect_end r;
    resp
  with
  | resp -> Ok resp
  | exception Exit ->
      Result.Error (Printf.sprintf "unknown response opcode 0x%02x" f.Wire.opcode)
  | exception Bad msg -> Result.Error msg
  | exception Bitbuf.Decode_error msg -> Result.Error msg
