(** Coalescing of identical in-flight computations.

    Certification responses are pure functions of their request, so
    concurrent identical requests share one computation: {!group}
    coalesces within a worker's queue batch (one engine sweep per
    distinct request per batch — the compiled-kernel cache fires once),
    and {!run} coalesces across workers (a second worker starting a
    request another worker is still computing waits for that result
    instead of recomputing).  See DESIGN §5.6. *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t
(** Keys are compared with structural equality/hashing. *)

val run : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [run t k f] computes [f ()] if no computation for [k] is in
    flight, else blocks until the in-flight leader finishes and
    returns (or re-raises) its result.  Results are never cached past
    completion — this deduplicates concurrency, not history. *)

val group : ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Group a batch by key, first-seen key order, per-key arrival
    order. *)

val observe_batch : ('k, 'v) t -> int -> unit
(** Record a coalesced group's size in the [serve.batch_size]
    histogram. *)
