(* Bounded MPMC work queue with overload admission.

   The IO domain pushes decoded frames, worker domains pop batches.
   Following lib/engine/pool.ml, blocking is mutex + condvar (workers
   sleep when idle) while the hot counters are plain ints under the
   same mutex — one short critical section per operation, no per-item
   allocation beyond the queue node.

   Admission is decided at push time and never blocks the IO domain:
   a full queue or a connection above its in-flight cap yields a typed
   rejection that the caller turns into a RETRY_LATER response.  That
   keeps overload visible to clients (they can back off) instead of
   letting it accumulate as unbounded queueing delay or a stalled
   accept loop. *)

type 'a t = {
  capacity : int;
  inflight_cap : int;
  q : 'a Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  depth_gauge : Metrics.gauge Lazy.t;
}

type decision = Admitted | Queue_full | Conn_saturated

(* Per-connection in-flight accounting.  [Atomic] rather than
   mutex-guarded: the IO domain increments on admit, whichever worker
   finishes the request decrements. *)
type slots = { cap : int; inflight : int Atomic.t }

let slots t = { cap = t.inflight_cap; inflight = Atomic.make 0 }
let inflight s = Atomic.get s.inflight
let release s = ignore (Atomic.fetch_and_add s.inflight (-1))

let create ~capacity ~inflight_cap () =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  if inflight_cap < 1 then invalid_arg "Admission.create: inflight_cap < 1";
  {
    capacity;
    inflight_cap;
    q = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    depth_gauge = lazy (Metrics.gauge ~approx:true "serve.queue_depth");
  }

let record_depth t depth =
  if Metrics.is_enabled () then
    Metrics.set_gauge (Lazy.force t.depth_gauge) depth

let try_admit t s item =
  (* The connection cap is checked (and charged) before the queue so a
     saturated connection cannot consume queue slots; on Queue_full the
     charge is rolled back. *)
  if Atomic.fetch_and_add s.inflight 1 >= s.cap then begin
    release s;
    Conn_saturated
  end
  else begin
    let decision =
      Mutex.protect t.m (fun () ->
          if t.closed || Queue.length t.q >= t.capacity then Queue_full
          else begin
            Queue.push item t.q;
            record_depth t (Queue.length t.q);
            Condition.signal t.nonempty;
            Admitted
          end)
    in
    if decision <> Admitted then release s;
    decision
  end

let depth t = Mutex.protect t.m (fun () -> Queue.length t.q)

(* Block for at least one item, then drain up to [max] without
   blocking: under load workers naturally pop batches (which is what
   lets the batcher coalesce identical requests and the writer merge
   response frames into one syscall), while a lone request is popped
   and served with no added latency.  [[]] only after [close]. *)
let pop_batch t ~max =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.m
  done;
  let rec drain acc k =
    if k >= max || Queue.is_empty t.q then List.rev acc
    else drain (Queue.pop t.q :: acc) (k + 1)
  in
  let items = drain [] 0 in
  record_depth t (Queue.length t.q);
  Mutex.unlock t.m;
  items

let close t =
  Mutex.protect t.m (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)
