(** Typed requests and responses over {!Wire} frames.

    Payloads are Bitbuf-encoded bit streams packed into bytes (bit
    length prefix, zero padding), so every field rides the same codecs
    the schemes' certificates use.  Decoding is total: malformed
    payloads and unknown opcodes come back as typed {!error_code}s, and
    the server answers them with an [Error] response on the same
    request id — no exception crosses this module's boundary except
    the fatal ones ({!Localcert_util.Fatal.is_fatal}).

    Instances are referenced by value, not by handle: a request names a
    registry scheme family ({!Localcert_core.Registry}) and a pure
    graph spec ({!Localcert_graph.Spec}), so any client — and any
    differential test — can rebuild the exact instance a request
    denotes. *)

type request =
  | Ping  (** liveness / latency-floor probe *)
  | Certify of { scheme : string; graph : string }
      (** run prover + engine verifier; answers [Verdict] *)
  | Verify of { scheme : string; graph : string; flip : (int * int) option }
      (** verify the prover's certification; [flip = Some (v, b)]
          first flips bit [b mod len] of vertex [v mod n]'s certificate
          (the soundness-probe path); answers [Verdict] *)
  | Simulate of {
      scheme : string;
      graph : string;
      plan : string;  (** a {!Localcert_runtime.Fault.of_spec} string *)
      rounds : int;
      seed : int;
    }  (** round-based runtime execution; answers [Sim] *)
  | Attack of {
      scheme : string;
      graph : string;
      trials : int;
      max_bits : int;
      seed : int;
    }  (** adversarial probe via [Engine.attack_par]; answers [Attacked] *)
  | Stats  (** Prometheus exposition of the server's metrics *)

type error_code =
  | Unknown_opcode of int
  | Bad_payload of string
  | Unknown_scheme of string
  | Bad_graph of string
  | Bad_plan of string
  | Bad_argument of string
  | Prover_declined
  | Internal of string

type response =
  | Pong
  | Verdict of {
      accepted : bool;
      max_bits : int;
      rejections : (int * string) list;
    }
  | Sim of {
      detected_at : int option;
      accepted : bool;
      trace : string;  (** the canonical {!Localcert_runtime.Trace} JSON *)
    }
  | Attacked of { trials : int; fooled : bool }
  | Stats_text of string
  | Retry_later
      (** admission control: queue full or per-connection cap hit;
          back off and resend *)
  | Error of error_code

val error_code_to_string : error_code -> string
val opcode_name : int -> string

val encode_request : ?trace:int -> id:int -> request -> Wire.frame
(** [trace] puts a tracing context on the frame (strictly optional:
    untraced requests are byte-identical to a client that has never
    heard of tracing). *)

val decode_request : Wire.frame -> (request, error_code) result

val encode_response : ?trace:int -> id:int -> response -> Wire.frame
(** Servers echo the request's trace id so the client can stitch its
    send/recv events to the server-side slices. *)

val encode_response_payload : response -> int * string
(** [(opcode, payload)] without an id — batched responses encode the
    shared payload once and stamp per-request ids into headers. *)

val decode_response : Wire.frame -> (response, string) result
