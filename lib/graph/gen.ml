module Rng = Localcert_util.Rng

(* Generators emit edges straight into Graph.of_iter's two counting
   passes: no generator below holds a per-edge tuple list, so a
   path:1000000 costs the CSR arrays and nothing else. *)

let path n =
  Graph.of_iter ~n (fun f ->
      for i = 0 to n - 2 do
        f i (i + 1)
      done)

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.of_iter ~n (fun f ->
      f (n - 1) 0;
      for i = 0 to n - 2 do
        f i (i + 1)
      done)

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  Graph.of_iter ~n (fun f ->
      for i = 1 to n - 1 do
        f 0 i
      done)

let clique n =
  Graph.of_iter ~n (fun f ->
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          f u v
        done
      done)

let complete_binary_tree h =
  if h < 0 then invalid_arg "Gen.complete_binary_tree: negative height";
  let n = (1 lsl (h + 1)) - 1 in
  Graph.of_iter ~n (fun f ->
      for v = 1 to n - 1 do
        f v ((v - 1) / 2)
      done)

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Gen.caterpillar";
  let n = spine * (legs + 1) in
  Graph.of_iter ~n (fun f ->
      for i = 0 to spine - 2 do
        f i (i + 1)
      done;
      for i = 0 to spine - 1 do
        for j = 0 to legs - 1 do
          f i (spine + (i * legs) + j)
        done
      done)

let spider ~legs ~leg_len =
  if legs < 0 || leg_len < 1 then invalid_arg "Gen.spider";
  let n = 1 + (legs * leg_len) in
  Graph.of_iter ~n (fun f ->
      for l = 0 to legs - 1 do
        let base = 1 + (l * leg_len) in
        f 0 base;
        for j = 0 to leg_len - 2 do
          f (base + j) (base + j + 1)
        done
      done)

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let idx r c = (r * cols) + c in
  Graph.of_iter ~n:(rows * cols) (fun f ->
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if c + 1 < cols then f (idx r c) (idx r (c + 1));
          if r + 1 < rows then f (idx r c) (idx (r + 1) c)
        done
      done)

(* Decode a Prüfer sequence of length n-2 into a labelled tree, O(n):
   a forward scan pointer finds the smallest untouched leaf, and a
   vertex whose degree drops to 1 *behind* the pointer is served on
   the very next step (there is at most one such pending leaf, and it
   is the minimum).  Same tree as the textbook smallest-leaf decode,
   without the log-factor of a leaf set. *)
let random_tree rng n =
  if n < 1 then invalid_arg "Gen.random_tree: need n >= 1";
  if n = 1 then Graph.empty 1
  else if n = 2 then Graph.of_edges ~n [ (0, 1) ]
  else begin
    let seq = Array.init (n - 2) (fun _ -> Rng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    let eu = Array.make (n - 1) 0 and ev = Array.make (n - 1) 0 in
    let ptr = ref 0 in
    let pending = ref (-1) in
    let next_leaf () =
      if !pending >= 0 then begin
        let l = !pending in
        pending := -1;
        l
      end
      else begin
        while deg.(!ptr) <> 1 do
          incr ptr
        done;
        !ptr
      end
    in
    Array.iteri
      (fun i v ->
        let l = next_leaf () in
        eu.(i) <- l;
        ev.(i) <- v;
        deg.(l) <- 0;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 && v < !ptr then pending := v)
      seq;
    let a = ref (-1) and b = ref (-1) in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then if !a < 0 then a := v else b := v
    done;
    eu.(n - 2) <- !a;
    ev.(n - 2) <- !b;
    Graph.of_iter ~n (fun f ->
        for i = 0 to n - 2 do
          f eu.(i) ev.(i)
        done)
  end

let random_tree_bounded_depth rng ~n ~depth =
  if n < 1 || depth < 0 then invalid_arg "Gen.random_tree_bounded_depth";
  let parent = Array.make n (-1) in
  let vdepth = Array.make n 0 in
  let candidates = ref [ 0 ] in
  for v = 1 to n - 1 do
    (match !candidates with
    | [] -> invalid_arg "Gen.random_tree_bounded_depth: depth 0, n > 1"
    | cs ->
        let p = Rng.pick rng cs in
        parent.(v) <- p;
        vdepth.(v) <- vdepth.(p) + 1);
    if vdepth.(v) < depth then candidates := v :: !candidates
  done;
  Graph.of_iter ~n (fun f ->
      for v = 1 to n - 1 do
        if parent.(v) >= 0 then f v parent.(v)
      done)

let random_connected rng ~n ~extra_edges =
  let t = random_tree rng n in
  let capacity = (n * (n - 1) / 2) - (n - 1) in
  let take = min extra_edges (max 0 capacity) in
  if take = 0 then t
  else if 3 * take >= capacity then begin
    (* dense request: enumerate the non-edges and shuffle *)
    let non_edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if not (Graph.mem_edge t u v) then non_edges := (u, v) :: !non_edges
      done
    done;
    let pool = Array.of_list !non_edges in
    Rng.shuffle rng pool;
    let extra = Array.to_list (Array.sub pool 0 take) in
    Graph.of_edges ~n (extra @ Graph.edges t)
  end
  else begin
    (* sparse request (the common case): rejection-sample the extra
       edges — each draw misses with probability < 2/3, so this is
       expected O(take) work instead of the O(n^2) non-edge
       enumeration, which at n = 65536 would materialize two billion
       pairs *)
    let chosen = Hashtbl.create (4 * take) in
    let extra = ref [] in
    let count = ref 0 in
    while !count < take do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then begin
        let e = (min u v, max u v) in
        if (not (Hashtbl.mem chosen e)) && not (Graph.mem_edge t u v) then begin
          Hashtbl.add chosen e ();
          extra := e :: !extra;
          incr count
        end
      end
    done;
    Graph.of_edges ~n (!extra @ Graph.edges t)
  end

let random_bounded_treedepth rng ~n ~depth ~p =
  if depth < 1 then invalid_arg "Gen.random_bounded_treedepth: depth >= 1";
  let tree = random_tree_bounded_depth rng ~n ~depth:(depth - 1) in
  (* The tree is rooted at 0 by construction; BFS recovers parents. *)
  let parent = (Graph.bfs_tree tree 0).Graph.parent in
  let rec ancestors v =
    if v = 0 then [] else parent.(v) :: ancestors parent.(v)
  in
  let es = ref [] in
  for v = 1 to n - 1 do
    es := (v, parent.(v)) :: !es;
    List.iter
      (fun a ->
        if a <> parent.(v) && Rng.float rng 1.0 < p then es := (v, a) :: !es)
      (ancestors v)
  done;
  Graph.of_edges ~n !es
