(* Hopcroft–Tarjan block decomposition by DFS with an edge stack. *)

let decompose g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let stack = ref [] in
  let blocks = ref [] in
  let cuts = Array.make n false in
  let rec dfs v parent =
    disc.(v) <- !timer;
    low.(v) <- !timer;
    incr timer;
    let children = ref 0 in
    Graph.iter_neighbors g v
      (fun w ->
        if disc.(w) = -1 then begin
          incr children;
          stack := (v, w) :: !stack;
          dfs w v;
          low.(v) <- min low.(v) low.(w);
          if low.(w) >= disc.(v) then begin
            (* [v] closes a block; pop the edge stack down to (v, w). *)
            if parent <> -1 then cuts.(v) <- true;
            let block = ref [] in
            let continue = ref true in
            while !continue do
              match !stack with
              | [] -> continue := false
              | e :: rest ->
                  stack := rest;
                  block := e :: !block;
                  if e = (v, w) then continue := false
            done;
            blocks := !block :: !blocks
          end
        end
        else if w <> parent && disc.(w) < disc.(v) then begin
          stack := (v, w) :: !stack;
          low.(v) <- min low.(v) disc.(w)
        end);
    if parent = -1 && !children >= 2 then cuts.(v) <- true
  in
  for v = 0 to n - 1 do
    if disc.(v) = -1 then dfs v (-1)
  done;
  (List.rev !blocks, cuts)

let cut_vertices g =
  let _, cuts = decompose g in
  List.filter (fun v -> cuts.(v)) (Graph.vertices g)

let blocks g = fst (decompose g)

let block_vertex_sets g =
  List.map
    (fun edge_list ->
      List.sort_uniq Int.compare
        (List.concat_map (fun (u, v) -> [ u; v ]) edge_list))
    (blocks g)
