(** Graph interchange: graph6, DOT, and plain edge lists.

    graph6 is the de-facto exchange format for small graphs (McKay's
    nauty suite); supporting it lets the CLI consume standard graph
    corpora.  DOT output is for eyeballing instances, elimination
    trees and tree decompositions. *)

val to_graph6 : Graph.t -> string
(** Standard graph6 (n ≤ 62 uses the 1-byte size; larger sizes use the
    4-byte form). *)

val of_graph6 : string -> (Graph.t, string) result
(** Parses a graph6 line (trailing newline tolerated). *)

val to_dot : ?labels:int array -> ?highlight:int list -> Graph.t -> string
(** Undirected DOT; [highlight] fills the listed vertices. *)

val to_edge_list : Graph.t -> string
(** ["n m\nu v\n…"] — the trivial format. *)

val of_edge_list : string -> (Graph.t, string) result
(** Token-based: header ["n m"] then [2m] whitespace-separated
    endpoints.  Builds the CSR in two counting passes over the text —
    no intermediate edge list. *)

val of_edge_list_file : string -> (Graph.t, string) result
(** Same format, streamed from a file.  Each counting pass re-opens
    and scans the file sequentially, so the input never needs to fit
    in memory beyond the OS page cache. *)
