(** Finite simple undirected graphs on vertex set [{0, …, n-1}].

    All graphs in the paper (and hence in this library) are loopless
    and simple; the certification model additionally assumes connected
    graphs, which callers check with {!is_connected} where it matters.

    The representation is an immutable compressed-sparse-row (CSR)
    layout: one [row_ptr] array of length [n+1] and one flat [col]
    array of length [2m], each row sorted strictly ascending.  Neighbor
    scans — the heart of every radius-1 verifier — are contiguous array
    reads, adjacency tests are binary searches within a row, and a full
    sweep over all vertices touches [col] exactly once, in order. *)

type t

type bfs_tree = {
  dist : int array;  (** BFS distance from the source, [-1] unreachable *)
  parent : int array;
      (** BFS-tree parent, [-1] at the source and on unreachable
          vertices *)
  order : int array;
      (** reached vertices in discovery order — distances along it are
          nondecreasing, so it doubles as a counting sort by distance *)
}

(** {1 Construction} *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph on vertices [0..n-1] with the
    given undirected edges.  Duplicate edges are collapsed; loops raise
    [Invalid_argument], as do endpoints outside [\[0, n)]. *)

val of_iter : n:int -> ((int -> int -> unit) -> unit) -> t
(** [of_iter ~n iter] builds the graph from a repeatable edge
    iterator: [iter f] must call [f u v] once per (undirected) edge,
    and is invoked twice — a counting pass that sizes the CSR rows and
    a fill pass that scatters endpoints — so no edge list of tuples is
    ever held.  The iterator must describe the same edges both times;
    a divergence raises [Invalid_argument], as do loops and
    out-of-range endpoints.  Duplicate edges are collapsed. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edge. *)

val add_edge : t -> int -> int -> t
(** Functional edge insertion (no-op if present). *)

val remove_vertex : t -> int -> t
(** [remove_vertex g v] deletes [v]; remaining vertices are renumbered
    by shifting down, preserving relative order. *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph induced by the (duplicate-free) list
    [vs], together with the array mapping new indices to original
    vertices. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [n] of the first. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0..n-1]. *)

(** {1 Observation} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** Sorted neighbor array.  Freshly allocated on every call — safe to
    mutate, but prefer {!iter_neighbors}/{!fold_neighbors} (or
    {!unsafe_csr} in compiled kernels) on hot paths. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbor of [v] in
    ascending order, without allocating. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Allocation-free fold over the neighbors of [v], ascending. *)

val unsafe_csr : t -> int array * int array
(** [(row_ptr, col)] — the internal arrays, for compiled verifier
    kernels that index rows directly: the neighbors of [v] are
    [col.(row_ptr.(v)) .. col.(row_ptr.(v+1) - 1)].  Do not mutate;
    writes would corrupt the graph for every holder. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** Adjacency test (binary search). *)

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], sorted. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v] for every edge with [u < v], in
    lexicographic order, without materializing a list — composes with
    {!of_iter} for rebuilds and with streaming writers. *)

val vertices : t -> int list
(** [0; 1; …; n-1]. *)

val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

val equal : t -> t -> bool
(** Same vertex count and same edge set (identity on labels).  The CSR
    form is canonical, so this is plain array equality. *)

(** {1 Traversal and metrics} *)

val bfs_dist : t -> int -> int array
(** [bfs_dist g s] has distance from [s] at index [v], or [-1] when
    unreachable. *)

val bfs_tree : t -> int -> bfs_tree
(** One-pass BFS from [s]: distances, tree parents and discovery order
    from a flat array queue, with no per-visit allocation. *)

val is_connected : t -> bool
(** True on the empty graph's complement convention: a graph with 0
    vertices is not connected (the paper assumes non-empty graphs); a
    1-vertex graph is. *)

val components : t -> int list list
(** Connected components as sorted vertex lists, in order of least
    vertex. *)

val diameter : t -> int
(** Exact eccentricity maximum over all vertices (BFS from each).
    Raises [Invalid_argument] on a disconnected or empty graph. *)

val is_tree : t -> bool
(** Connected and [m = n - 1]. *)

val is_acyclic : t -> bool
(** Forest test: [m = n - #components]. *)

(** {1 Edit overlay}

    Dynamic-topology simulations apply a handful of edge edits per
    round to graphs with up to 10⁶ vertices; rebuilding the CSR per
    edit would cost [O(n + m)] each time.  {!Delta} is a mutable edit
    overlay over an immutable base CSR: adds and removals land in
    small per-vertex diff lists, the overlay-aware accessors merge
    them on the fly, and {!Delta.commit} pays the full rebuild once,
    when a clean CSR is actually needed (re-certification, final
    state).  Reads are safe from multiple domains as long as no edit
    runs concurrently — the runtime edits sequentially between
    rounds. *)

module Delta : sig
  type graph := t

  type t
  (** A base graph plus pending undirected edge edits. *)

  val create : graph -> t
  (** An empty overlay: behaves exactly like the base. *)

  val base : t -> graph
  (** The immutable graph underneath (without pending edits). *)

  val n : t -> int
  (** Vertex count (edits never add or remove vertices). *)

  val edit_count : t -> int
  (** Number of undirected edges on which the overlay currently
      differs from the base; [0] means {!commit} is free. *)

  val add_edge : t -> int -> int -> bool
  (** [add_edge d u v] makes [u–v] present; [true] iff the graph
      changed (the edge was absent).  Raises [Invalid_argument] on a
      loop or out-of-range endpoint. *)

  val remove_edge : t -> int -> int -> bool
  (** [remove_edge d u v] makes [u–v] absent; [true] iff the graph
      changed.  Raises like {!add_edge}. *)

  val mem_edge : t -> int -> int -> bool
  val degree : t -> int -> int

  val iter_neighbors : t -> int -> (int -> unit) -> unit
  (** Ascending, duplicate-free, like {!Graph.iter_neighbors}; with no
      pending edits this is exactly the base iteration. *)

  val commit : t -> graph
  (** A clean CSR of the current topology.  Returns the base itself
      when [edit_count = 0]; otherwise one [of_iter] rebuild.  The
      overlay keeps its edits — committing is a read. *)
end

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
(** Prints as [n=…; edges=(u,v)…]. *)
