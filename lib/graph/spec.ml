(* Textual graph specifications, shared by the CLI's --graph option and
   the wire protocol's instance references.

   Only pure, deterministic constructors live here: a spec names a
   generator and its parameters, so the same string builds the same
   graph in the CLI, in the server and in a differential test.  The
   CLI-only `file:PATH` form (which reads the local filesystem) stays
   in bin/ — a network request must not be able to name server-side
   paths. *)

let int_field name s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: expected an integer, got %S" name s)

let parse ?max_vertices ?max_edges spec =
  let fail msg = Error msg in
  (* Size checks run on the spec's *parameters*, before a generator
     allocates anything: a short string can name an enormous graph
     (clique:100000 is ~5e9 edges, edges:0-9999999999 a 10^10-slot
     array), and a capped consumer — the server admits specs from the
     network — must refuse it at the cap, not fall over building it.
     Estimates are computed in floats so cbt:500 cannot overflow. *)
  let check ~n ~m =
    (match max_vertices with
    | Some cap when n > float_of_int cap ->
        failwith
          (Printf.sprintf "graph spec names ~%.0f vertices; the cap here is %d"
             n cap)
    | _ -> ());
    match max_edges with
    | Some cap when m > float_of_int cap ->
        failwith
          (Printf.sprintf "graph spec names ~%.0f edges; the cap here is %d" m
             cap)
    | _ -> ()
  in
  let fi = float_of_int in
  let sized ~n ~m g =
    check ~n ~m;
    g ()
  in
  match
    match String.split_on_char ':' spec with
    | [ "path"; n ] ->
        let n = int_field "path" n in
        sized ~n:(fi n) ~m:(fi n) (fun () -> Gen.path n)
    | [ "cycle"; n ] ->
        let n = int_field "cycle" n in
        sized ~n:(fi n) ~m:(fi n) (fun () -> Gen.cycle n)
    | [ "star"; n ] ->
        let n = int_field "star" n in
        sized ~n:(fi n) ~m:(fi n) (fun () -> Gen.star n)
    | [ "clique"; n ] ->
        let n = int_field "clique" n in
        sized ~n:(fi n)
          ~m:(fi n *. (fi n -. 1.) /. 2.)
          (fun () -> Gen.clique n)
    | [ "cbt"; h ] ->
        let h = int_field "cbt" h in
        let n = if h < 0 then 0. else (2. ** fi (h + 1)) -. 1. in
        sized ~n ~m:n (fun () -> Gen.complete_binary_tree h)
    | [ "caterpillar"; s; l ] ->
        let s = int_field "spine" s and l = int_field "legs" l in
        let n = fi s *. (fi l +. 1.) in
        sized ~n ~m:n (fun () -> Gen.caterpillar ~spine:s ~legs:l)
    | [ "spider"; l; len ] ->
        let l = int_field "legs" l and len = int_field "leg-len" len in
        let n = 1. +. (fi l *. fi len) in
        sized ~n ~m:n (fun () -> Gen.spider ~legs:l ~leg_len:len)
    | [ "grid"; r; c ] ->
        let r = int_field "rows" r and c = int_field "cols" c in
        sized ~n:(fi r *. fi c)
          ~m:(2. *. fi r *. fi c)
          (fun () -> Gen.grid r c)
    | [ "random-tree"; n; seed ] ->
        let n = int_field "n" n and seed = int_field "seed" seed in
        sized ~n:(fi n) ~m:(fi n) (fun () ->
            Gen.random_tree (Localcert_util.Rng.make seed) n)
    | [ "random-btd"; n; d; seed ] ->
        let n = int_field "n" n
        and d = int_field "depth" d
        and seed = int_field "seed" seed in
        sized ~n:(fi n)
          ~m:(fi n *. fi (max 1 d))
          (fun () ->
            Gen.random_bounded_treedepth
              (Localcert_util.Rng.make seed)
              ~n ~depth:d ~p:0.5)
    | "g6" :: rest -> (
        (* the input's length already bounds the build cost; the built
           graph is still held to the caps *)
        match Io.of_graph6 (String.concat ":" rest) with
        | Ok g ->
            check ~n:(fi (Graph.n g)) ~m:(fi (Graph.m g));
            g
        | Error e -> failwith e)
    | [ "edges"; es ] ->
        let pairs =
          String.split_on_char ',' es
          |> List.map (fun e ->
                 match String.split_on_char '-' e with
                 | [ a; b ] -> (int_field "edge" a, int_field "edge" b)
                 | _ -> failwith "bad edge list; expected edges:0-1,1-2,...")
        in
        if pairs = [] then failwith "empty edge list";
        let n =
          1 + List.fold_left (fun acc (a, b) -> max acc (max a b)) 0 pairs
        in
        (* one huge endpoint means an n-slot adjacency allocation *)
        check ~n:(fi n) ~m:(fi (List.length pairs));
        Graph.of_edges ~n pairs
    | _ -> failwith (Printf.sprintf "unknown graph spec %S" spec)
  with
  | g -> Ok g
  | exception Failure msg -> fail msg
  | exception Invalid_argument msg -> fail msg
