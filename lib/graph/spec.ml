(* Textual graph specifications, shared by the CLI's --graph option and
   the wire protocol's instance references.

   Only pure, deterministic constructors live here: a spec names a
   generator and its parameters, so the same string builds the same
   graph in the CLI, in the server and in a differential test.  The
   CLI-only `file:PATH` form (which reads the local filesystem) stays
   in bin/ — a network request must not be able to name server-side
   paths. *)

let int_field name s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: expected an integer, got %S" name s)

let parse spec =
  let fail msg = Error msg in
  match
    match String.split_on_char ':' spec with
    | [ "path"; n ] -> Gen.path (int_field "path" n)
    | [ "cycle"; n ] -> Gen.cycle (int_field "cycle" n)
    | [ "star"; n ] -> Gen.star (int_field "star" n)
    | [ "clique"; n ] -> Gen.clique (int_field "clique" n)
    | [ "cbt"; h ] -> Gen.complete_binary_tree (int_field "cbt" h)
    | [ "caterpillar"; s; l ] ->
        Gen.caterpillar ~spine:(int_field "spine" s) ~legs:(int_field "legs" l)
    | [ "spider"; l; len ] ->
        Gen.spider ~legs:(int_field "legs" l) ~leg_len:(int_field "leg-len" len)
    | [ "grid"; r; c ] -> Gen.grid (int_field "rows" r) (int_field "cols" c)
    | [ "random-tree"; n; seed ] ->
        Gen.random_tree
          (Localcert_util.Rng.make (int_field "seed" seed))
          (int_field "n" n)
    | [ "random-btd"; n; d; seed ] ->
        Gen.random_bounded_treedepth
          (Localcert_util.Rng.make (int_field "seed" seed))
          ~n:(int_field "n" n) ~depth:(int_field "depth" d) ~p:0.5
    | "g6" :: rest -> (
        match Io.of_graph6 (String.concat ":" rest) with
        | Ok g -> g
        | Error e -> failwith e)
    | [ "edges"; es ] ->
        let pairs =
          String.split_on_char ',' es
          |> List.map (fun e ->
                 match String.split_on_char '-' e with
                 | [ a; b ] -> (int_field "edge" a, int_field "edge" b)
                 | _ -> failwith "bad edge list; expected edges:0-1,1-2,...")
        in
        if pairs = [] then failwith "empty edge list";
        let n =
          1 + List.fold_left (fun acc (a, b) -> max acc (max a b)) 0 pairs
        in
        Graph.of_edges ~n pairs
    | _ -> failwith (Printf.sprintf "unknown graph spec %S" spec)
  with
  | g -> Ok g
  | exception Failure msg -> fail msg
  | exception Invalid_argument msg -> fail msg
