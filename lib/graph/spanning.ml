type t = { root : int; parent : int array; dist : int array }

let bfs g ~root =
  let bt = Graph.bfs_tree g root in
  if Array.length bt.Graph.order < Graph.n g then
    invalid_arg "Spanning.bfs: disconnected graph";
  { root; parent = bt.Graph.parent; dist = bt.Graph.dist }

let children t v =
  let out = ref [] in
  Array.iteri (fun w p -> if p = v then out := w :: !out) t.parent;
  List.rev !out

let subtree_sizes t =
  let n = Array.length t.parent in
  let sizes = Array.make n 1 in
  (* Accumulate children into parents in order of decreasing BFS
     distance; a counting sort by distance replaces the old
     comparison sort (distances are small dense ints). *)
  let maxd = Array.fold_left max 0 t.dist in
  let start = Array.make (maxd + 1) 0 in
  Array.iter (fun d -> start.(d) <- start.(d) + 1) t.dist;
  let acc = ref 0 in
  for d = 0 to maxd do
    let c = start.(d) in
    start.(d) <- !acc;
    acc := !acc + c
  done;
  let order = Array.make n 0 in
  for v = 0 to n - 1 do
    let d = t.dist.(v) in
    order.(start.(d)) <- v;
    start.(d) <- start.(d) + 1
  done;
  for i = n - 1 downto 0 do
    let v = order.(i) in
    if t.parent.(v) >= 0 then
      sizes.(t.parent.(v)) <- sizes.(t.parent.(v)) + sizes.(v)
  done;
  sizes

let to_graph t =
  let n = Array.length t.parent in
  Graph.of_iter ~n (fun f ->
      for v = 0 to n - 1 do
        if t.parent.(v) >= 0 then f v t.parent.(v)
      done)
