(* Compressed sparse row.  [row_ptr] has length [size + 1]; the
   neighbors of [v] are [col.(row_ptr.(v)) .. col.(row_ptr.(v+1) - 1)],
   sorted strictly ascending (no duplicates, no loops).  Two flat int
   arrays is the whole graph: a neighbor sweep over all vertices is one
   linear pass over [col], and the representation is canonical, so
   structural equality of the arrays decides graph equality. *)

type t = { size : int; row_ptr : int array; col : int array }

type bfs_tree = { dist : int array; parent : int array; order : int array }

let check_vertex ~n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph: vertex %d out of [0,%d)" v n)

(* Two-pass counting build: pass 1 sizes the rows, pass 2 scatters the
   endpoints, then each row is sorted and deduplicated in place.  The
   iterator must describe the same edge multiset on both passes; a
   shrinking or growing second pass is detected and rejected rather
   than silently producing a corrupt graph.  Nothing here holds a
   per-edge tuple, so ingesting 10^6-edge streams costs two int arrays
   and whatever the caller's iterator itself needs. *)
let of_iter ~n iter =
  if n < 0 then invalid_arg "Graph.of_iter: negative size";
  let row_ptr = Array.make (n + 1) 0 in
  iter (fun u v ->
      check_vertex ~n u;
      check_vertex ~n v;
      if u = v then invalid_arg "Graph.of_iter: loop";
      row_ptr.(u + 1) <- row_ptr.(u + 1) + 1;
      row_ptr.(v + 1) <- row_ptr.(v + 1) + 1);
  for v = 1 to n do
    row_ptr.(v) <- row_ptr.(v) + row_ptr.(v - 1)
  done;
  let total = row_ptr.(n) in
  let col = Array.make total 0 in
  let next = Array.copy row_ptr in
  iter (fun u v ->
      if next.(u) >= row_ptr.(u + 1) || next.(v) >= row_ptr.(v + 1) then
        invalid_arg "Graph.of_iter: iterator changed between passes";
      col.(next.(u)) <- v;
      next.(u) <- next.(u) + 1;
      col.(next.(v)) <- u;
      next.(v) <- next.(v) + 1);
  for v = 0 to n - 1 do
    if next.(v) <> row_ptr.(v + 1) then
      invalid_arg "Graph.of_iter: iterator changed between passes"
  done;
  (* Sort rows that need it (generators mostly emit ascending already),
     then compact duplicates with a single forward write cursor: the
     write position never overtakes the read position, so this is
     in place. *)
  let w = ref 0 in
  let rp = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    let lo = row_ptr.(v) and hi = row_ptr.(v + 1) in
    let sorted = ref true in
    for i = lo + 1 to hi - 1 do
      if col.(i - 1) > col.(i) then sorted := false
    done;
    if not !sorted then begin
      let tmp = Array.sub col lo (hi - lo) in
      Array.sort Int.compare tmp;
      Array.blit tmp 0 col lo (hi - lo)
    end;
    let prev = ref (-1) in
    for i = lo to hi - 1 do
      let x = col.(i) in
      if x <> !prev then begin
        col.(!w) <- x;
        incr w;
        prev := x
      end
    done;
    rp.(v + 1) <- !w
  done;
  let col = if !w = total then col else Array.sub col 0 !w in
  { size = n; row_ptr = rp; col }

let of_edges ~n edges =
  of_iter ~n (fun f -> List.iter (fun (u, v) -> f u v) edges)

let empty n =
  if n < 0 then invalid_arg "Graph.of_iter: negative size";
  { size = n; row_ptr = Array.make (n + 1) 0; col = [||] }

let n g = g.size
let m g = g.row_ptr.(g.size) / 2

let degree g v =
  check_vertex ~n:g.size v;
  g.row_ptr.(v + 1) - g.row_ptr.(v)

let neighbors g v =
  check_vertex ~n:g.size v;
  Array.sub g.col g.row_ptr.(v) (g.row_ptr.(v + 1) - g.row_ptr.(v))

let iter_neighbors g v f =
  check_vertex ~n:g.size v;
  for i = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
    f (Array.unsafe_get g.col i)
  done

let fold_neighbors g v f init =
  check_vertex ~n:g.size v;
  let acc = ref init in
  for i = g.row_ptr.(v) to g.row_ptr.(v + 1) - 1 do
    acc := f !acc (Array.unsafe_get g.col i)
  done;
  !acc

let unsafe_csr g = (g.row_ptr, g.col)

let mem_edge g u v =
  check_vertex ~n:g.size u;
  check_vertex ~n:g.size v;
  let col = g.col in
  let rec bin lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let x = col.(mid) in
      if x = v then true else if x < v then bin (mid + 1) hi else bin lo mid
  in
  bin g.row_ptr.(u) g.row_ptr.(u + 1)

let iter_edges g f =
  for u = 0 to g.size - 1 do
    for i = g.row_ptr.(u) to g.row_ptr.(u + 1) - 1 do
      let v = g.col.(i) in
      if u < v then f u v
    done
  done

(* Rows are ascending and sorted, so prepending while walking backwards
   yields the (u, v), u < v list already in lexicographic order. *)
let edges g =
  let acc = ref [] in
  for u = g.size - 1 downto 0 do
    for i = g.row_ptr.(u + 1) - 1 downto g.row_ptr.(u) do
      let v = g.col.(i) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

let vertices g = List.init g.size Fun.id

let fold_vertices f g init =
  let acc = ref init in
  for v = 0 to g.size - 1 do
    acc := f v !acc
  done;
  !acc

let add_edge g u v =
  check_vertex ~n:g.size u;
  check_vertex ~n:g.size v;
  if u = v then invalid_arg "Graph.add_edge: loop";
  if mem_edge g u v then g
  else
    of_iter ~n:g.size (fun f ->
        iter_edges g f;
        f u v)

let remove_vertex g v =
  check_vertex ~n:g.size v;
  let rename u = if u < v then u else u - 1 in
  of_iter ~n:(g.size - 1) (fun f ->
      iter_edges g (fun a b ->
          if a <> v && b <> v then f (rename a) (rename b)))

let induced g vs =
  let vs = List.sort_uniq Int.compare vs in
  List.iter (check_vertex ~n:g.size) vs;
  let back = Array.of_list vs in
  let fwd = Array.make g.size (-1) in
  Array.iteri (fun i v -> fwd.(v) <- i) back;
  let sub =
    of_iter ~n:(Array.length back) (fun f ->
        iter_edges g (fun u v ->
            let a = fwd.(u) and b = fwd.(v) in
            if a >= 0 && b >= 0 then f a b))
  in
  (sub, back)

let disjoint_union g h =
  let size = g.size + h.size in
  let gm = g.row_ptr.(g.size) in
  let row_ptr = Array.make (size + 1) 0 in
  Array.blit g.row_ptr 0 row_ptr 0 (g.size + 1);
  for v = 1 to h.size do
    row_ptr.(g.size + v) <- gm + h.row_ptr.(v)
  done;
  let col = Array.make (gm + h.row_ptr.(h.size)) 0 in
  Array.blit g.col 0 col 0 gm;
  for i = 0 to Array.length h.col - 1 do
    col.(gm + i) <- h.col.(i) + g.size
  done;
  { size; row_ptr; col }

let relabel g perm =
  if Array.length perm <> g.size then
    invalid_arg "Graph.relabel: wrong permutation length";
  let seen = Array.make g.size false in
  Array.iter
    (fun v ->
      check_vertex ~n:g.size v;
      if seen.(v) then invalid_arg "Graph.relabel: not a permutation";
      seen.(v) <- true)
    perm;
  of_iter ~n:g.size (fun f -> iter_edges g (fun u v -> f perm.(u) perm.(v)))

(* The representation is canonical (rows sorted, no duplicates), so
   equality is array equality — no edge lists materialized. *)
let equal g h =
  g.size = h.size && g.row_ptr = h.row_ptr && g.col = h.col

(* BFS over a flat int-array queue: no Queue cells, no per-visit
   allocation, and the queue prefix doubles as the discovery order. *)
let bfs_tree g s =
  check_vertex ~n:g.size s;
  let dist = Array.make g.size (-1) in
  let parent = Array.make g.size (-1) in
  let queue = Array.make g.size 0 in
  let rp = g.row_ptr and col = g.col in
  dist.(s) <- 0;
  queue.(0) <- s;
  let tail = ref 1 in
  let head = ref 0 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) + 1 in
    for i = rp.(u) to rp.(u + 1) - 1 do
      let v = Array.unsafe_get col i in
      if dist.(v) = -1 then begin
        dist.(v) <- du;
        parent.(v) <- u;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  let order = if !tail = g.size then queue else Array.sub queue 0 !tail in
  { dist; parent; order }

let bfs_dist g s = (bfs_tree g s).dist

let is_connected g =
  if g.size = 0 then false
  else Array.length (bfs_tree g 0).order = g.size

let components g =
  let seen = Array.make g.size false in
  let comps = ref [] in
  for s = 0 to g.size - 1 do
    if not seen.(s) then begin
      let dist = bfs_dist g s in
      let comp = ref [] in
      for v = g.size - 1 downto 0 do
        if dist.(v) >= 0 && not seen.(v) then begin
          seen.(v) <- true;
          comp := v :: !comp
        end
      done;
      comps := !comp :: !comps
    end
  done;
  List.rev !comps

let diameter g =
  if g.size = 0 then invalid_arg "Graph.diameter: empty graph";
  let best = ref 0 in
  for s = 0 to g.size - 1 do
    Array.iter
      (fun d ->
        if d < 0 then invalid_arg "Graph.diameter: disconnected graph";
        if d > !best then best := d)
      (bfs_dist g s)
  done;
  !best

let is_tree g = is_connected g && m g = g.size - 1

let is_acyclic g = m g = g.size - List.length (components g)

(* Edit overlay for dynamic-topology simulations (DESIGN §5.9).  The
   base CSR stays immutable and shared; the overlay holds two small
   per-vertex sorted adjacency diffs.  Invariants: [added] is disjoint
   from the base adjacency, [removed] is a subset of it, and both
   tables are symmetric, so a merge of a base row with its diff lists
   is duplicate-free and ascending by construction.  [edits] counts
   the undirected edges on which the overlay currently differs from
   the base: re-adding a removed edge shrinks it back, and a delta
   that has drifted home ([edits = 0]) commits to the base for free. *)
module Delta = struct
  type graph = t

  let base_mem_edge = mem_edge

  type t = {
    base : graph;
    added : (int, int list) Hashtbl.t;
    removed : (int, int list) Hashtbl.t;
    mutable edits : int;
  }

  let create base =
    { base; added = Hashtbl.create 16; removed = Hashtbl.create 16; edits = 0 }

  let base d = d.base
  let n d = d.base.size
  let edit_count d = d.edits
  let slot tbl v = Option.value (Hashtbl.find_opt tbl v) ~default:[]

  let mem_edge d u v =
    check_vertex ~n:d.base.size u;
    check_vertex ~n:d.base.size v;
    List.mem v (slot d.added u)
    || (base_mem_edge d.base u v && not (List.mem v (slot d.removed u)))

  let insert tbl u v =
    Hashtbl.replace tbl u (List.sort Int.compare (v :: slot tbl u))

  let delete tbl u v =
    match List.filter (fun x -> x <> v) (slot tbl u) with
    | [] -> Hashtbl.remove tbl u
    | l -> Hashtbl.replace tbl u l

  let add_edge d u v =
    check_vertex ~n:d.base.size u;
    check_vertex ~n:d.base.size v;
    if u = v then invalid_arg "Graph.Delta.add_edge: loop";
    if mem_edge d u v then false
    else begin
      if base_mem_edge d.base u v then begin
        delete d.removed u v;
        delete d.removed v u;
        d.edits <- d.edits - 1
      end
      else begin
        insert d.added u v;
        insert d.added v u;
        d.edits <- d.edits + 1
      end;
      true
    end

  let remove_edge d u v =
    check_vertex ~n:d.base.size u;
    check_vertex ~n:d.base.size v;
    if u = v then invalid_arg "Graph.Delta.remove_edge: loop";
    if not (mem_edge d u v) then false
    else begin
      if base_mem_edge d.base u v then begin
        insert d.removed u v;
        insert d.removed v u;
        d.edits <- d.edits + 1
      end
      else begin
        delete d.added u v;
        delete d.added v u;
        d.edits <- d.edits - 1
      end;
      true
    end

  let degree d v =
    degree d.base v
    - List.length (slot d.removed v)
    + List.length (slot d.added v)

  let iter_neighbors d v f =
    if d.edits = 0 then iter_neighbors d.base v f
    else begin
      let removed = slot d.removed v in
      let pending = ref (slot d.added v) in
      let emit_added_below w =
        let rec go () =
          match !pending with
          | a :: rest when a < w ->
              f a;
              pending := rest;
              go ()
          | _ -> ()
        in
        go ()
      in
      iter_neighbors d.base v (fun w ->
          emit_added_below w;
          if not (List.mem w removed) then f w);
      List.iter f !pending
    end

  let commit d =
    if d.edits = 0 then d.base
    else
      (* Both passes of [of_iter] see the tables unmutated, so the
         iterator is repeatable; the CSR build re-sorts rows, so the
         Hashtbl iteration order never shows in the result. *)
      of_iter ~n:d.base.size (fun f ->
          iter_edges d.base (fun u v ->
              if not (List.mem v (slot d.removed u)) then f u v);
          Hashtbl.iter
            (fun u l -> List.iter (fun v -> if u < v then f u v) l)
            d.added)
end

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>n=%d;@ edges=" g.size;
  List.iter (fun (u, v) -> Format.fprintf ppf "(%d,%d)@ " u v) (edges g);
  Format.fprintf ppf "@]"
