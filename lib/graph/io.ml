(* graph6: size prefix (n, or 126 then 3 sextets for n <= 258047),
   then the upper triangle x(0,1) x(0,2) x(1,2) x(0,3) … packed into
   6-bit groups, each + 63.

   Both readers below build the CSR directly through Graph.of_iter's
   two counting passes: decoding is re-run per pass (pure reads over
   the input), so no per-edge tuple list is ever materialized — the
   peak cost of ingesting an n-vertex stream is the graph itself. *)

let to_graph6 g =
  let n = Graph.n g in
  let buf = Buffer.create (8 + (n * n / 12)) in
  if n <= 62 then Buffer.add_char buf (Char.chr (63 + n))
  else begin
    if n > 258047 then invalid_arg "Io.to_graph6: graph too large";
    Buffer.add_char buf (Char.chr 126);
    Buffer.add_char buf (Char.chr (63 + ((n lsr 12) land 63)));
    Buffer.add_char buf (Char.chr (63 + ((n lsr 6) land 63)));
    Buffer.add_char buf (Char.chr (63 + (n land 63)))
  end;
  let acc = ref 0 and filled = ref 0 in
  let flush_groups () =
    Buffer.add_char buf (Char.chr (63 + !acc));
    acc := 0;
    filled := 0
  in
  let push b =
    acc := (!acc lsl 1) lor (if b then 1 else 0);
    incr filled;
    if !filled = 6 then flush_groups ()
  in
  for col = 1 to n - 1 do
    for row = 0 to col - 1 do
      push (Graph.mem_edge g row col)
    done
  done;
  if !filled > 0 then begin
    acc := !acc lsl (6 - !filled);
    filled := 6;
    flush_groups ()
  end;
  Buffer.contents buf

let of_graph6 line =
  let line = String.trim line in
  let len = String.length line in
  let byte i =
    if i >= len then Error "truncated graph6"
    else
      let c = Char.code line.[i] - 63 in
      if c < 0 || c > 63 then Error "invalid graph6 character" else Ok c
  in
  let ( let* ) = Result.bind in
  let* n, start =
    let* b0 = byte 0 in
    if b0 < 63 then Ok (b0, 1)
    else
      let* b1 = byte 1 in
      let* b2 = byte 2 in
      let* b3 = byte 3 in
      Ok ((b1 lsl 12) lor (b2 lsl 6) lor b3, 4)
  in
  let bit_count = n * (n - 1) / 2 in
  let needed = (bit_count + 5) / 6 in
  if len - start < needed then Error "graph6 body too short"
  else if
    not
      (String.for_all
         (fun c -> Char.code c >= 63 && Char.code c <= 126)
         (String.sub line start (len - start)))
  then Error "invalid graph6 character"
  else begin
    let bit i =
      let group = Char.code line.[start + (i / 6)] - 63 in
      group land (1 lsl (5 - (i mod 6))) <> 0
    in
    match
      Graph.of_iter ~n (fun f ->
          let idx = ref 0 in
          for col = 1 to n - 1 do
            for row = 0 to col - 1 do
              if bit !idx then f row col;
              incr idx
            done
          done)
    with
    | g -> Ok g
    | exception Invalid_argument m -> Error m
  end

let to_dot ?labels ?(highlight = []) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n";
  List.iter
    (fun v ->
      let label =
        match labels with
        | Some a when a.(v) <> 0 -> Printf.sprintf " [label=\"%d:%d\"]" v a.(v)
        | _ -> ""
      in
      let fill =
        if List.mem v highlight then " [style=filled fillcolor=lightblue]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d%s%s;\n" v label fill))
    (Graph.vertices g);
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_edge_list g =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

(* Whitespace-separated int scanner over a pull-based character
   source.  Both edge-list readers share it; the source is re-created
   per counting pass, so a pass is one forward scan with no lookahead
   state beyond a single char. *)

let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\n'
let is_digit c = c >= '0' && c <= '9'

let read_int read ~eof_msg =
  let rec skip () =
    match read () with
    | Some c when is_ws c -> skip ()
    | other -> other
  in
  match skip () with
  | None -> failwith eof_msg
  | Some c0 ->
      let neg = c0 = '-' in
      let c0 =
        if neg then
          match read () with
          | Some c -> c
          | None -> failwith eof_msg
        else c0
      in
      if not (is_digit c0) then failwith eof_msg;
      let v = ref (Char.code c0 - Char.code '0') in
      let stop = ref false in
      while not !stop do
        match read () with
        | Some c when is_digit c -> v := (!v * 10) + (Char.code c - Char.code '0')
        | Some c when is_ws c -> stop := true
        | Some _ -> failwith eof_msg
        | None -> stop := true
      done;
      if neg then - !v else !v

let rest_is_ws read =
  let rec go () =
    match read () with
    | None -> true
    | Some c when is_ws c -> go ()
    | Some _ -> false
  in
  go ()

(* Parses "n m" then m edges from a fresh character source per pass.
   [source ()] must yield the same characters on every call. *)
let edge_list_of_source source =
  let header read =
    let n = read_int read ~eof_msg:"bad header" in
    let m = read_int read ~eof_msg:"bad header" in
    if n < 0 || m < 0 then failwith "bad header";
    (n, m)
  in
  match
    let n, m = header (source ()) in
    Graph.of_iter ~n (fun f ->
        let read = source () in
        let _ = header read in
        for _ = 1 to m do
          let a = read_int read ~eof_msg:"edge count mismatch" in
          let b = read_int read ~eof_msg:"edge count mismatch" in
          f a b
        done;
        if not (rest_is_ws read) then failwith "edge count mismatch")
  with
  | g -> Ok g
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let string_source text () =
  let p = ref 0 in
  let len = String.length text in
  fun () ->
    if !p >= len then None
    else begin
      let c = text.[!p] in
      incr p;
      Some c
    end

let of_edge_list text =
  if String.for_all is_ws text then Error "empty input"
  else edge_list_of_source (string_source text)

let of_edge_list_file path =
  (* Each counting pass re-opens the file: two sequential scans, so a
     multi-gigabyte edge list never needs to fit in memory. *)
  let run () =
    let channels = ref [] in
    let source () =
      let ic = open_in path in
      channels := ic :: !channels;
      fun () ->
        match input_char ic with
        | c -> Some c
        | exception End_of_file -> None
    in
    Fun.protect
      ~finally:(fun () -> List.iter close_in_noerr !channels)
      (fun () -> edge_list_of_source source)
  in
  match run () with
  | r -> r
  | exception Sys_error msg -> Error msg
