(* Exhaustive DFS over simple paths.  The visited set is a plain bool
   array; the search is exponential in the worst case but fine on the
   sparse instances the experiments use. *)

let longest_path g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let visited = Array.make n false in
    let best = ref 1 in
    let rec extend v len =
      if len > !best then best := len;
      Graph.iter_neighbors g v (fun w ->
          if not visited.(w) then begin
            visited.(w) <- true;
            extend w (len + 1);
            visited.(w) <- false
          end)
    in
    for s = 0 to n - 1 do
      visited.(s) <- true;
      extend s 1;
      visited.(s) <- false
    done;
    !best
  end

let circumference g =
  let n = Graph.n g in
  let best = ref 0 in
  let visited = Array.make n false in
  (* Only search cycles whose minimum vertex is the start [s]; this
     avoids rediscovering each cycle at every vertex. *)
  let rec extend s v len =
    Graph.iter_neighbors g v (fun w ->
        if w = s && len >= 3 then begin
          if len > !best then best := len
        end
        else if w > s && not visited.(w) then begin
          visited.(w) <- true;
          extend s w (len + 1);
          visited.(w) <- false
        end)
  in
  for s = 0 to n - 1 do
    visited.(s) <- true;
    extend s s 1;
    visited.(s) <- false
  done;
  !best

let has_path_minor g t = t <= 1 || longest_path g >= t

let has_cycle_minor g t =
  if t < 3 then invalid_arg "Paths.has_cycle_minor: need t >= 3";
  circumference g >= t
