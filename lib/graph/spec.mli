(** Textual graph specifications.

    One grammar, three consumers: the CLI's [--graph] option, the wire
    protocol's instance references, and the differential tests that
    must rebuild the exact graph a server request named.  Supported
    forms:

    {v
    path:N cycle:N star:N clique:N cbt:H caterpillar:S:L spider:L:LEN
    grid:R:C random-tree:N:SEED random-btd:N:DEPTH:SEED
    g6:GRAPH6 edges:0-1,1-2,...
    v}

    Every form is a pure function of the spec string (randomized
    generators embed their seed), so equal specs build equal graphs in
    every process.  Specs never touch the filesystem; the CLI's
    [file:PATH] convenience stays CLI-local. *)

val parse :
  ?max_vertices:int -> ?max_edges:int -> string -> (Graph.t, string) result
(** Parse and build, or a human-readable error (never raises on
    adversarial input).

    [max_vertices]/[max_edges] bound the named graph's size, checked
    against a parameter-derived estimate {e before} anything is
    allocated: a consumer that admits specs from untrusted input (the
    server) can refuse [clique:100000] (~5·10⁹ edges) or a single
    enormous [edges:] endpoint without paying to build it.  Unset
    (the CLI) means unbounded, as before. *)
