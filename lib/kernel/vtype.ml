type t = {
  uid : int;
  vlabel : int;
  anc : bool list;
  kids : (t * int) list;  (** sorted by child uid *)
}

let id t = t.uid

let label t = t.vlabel

let anc_vector t = t.anc

let children t = t.kids

let equal a b = a.uid = b.uid

let compare a b = Int.compare a.uid b.uid

(* Global hash-cons registry keyed by the structural content (ancestor
   vector + children uids with counts). *)
let registry : (int * bool list * (int * int) list, t) Hashtbl.t =
  Hashtbl.create 256

let counter = ref 0

let make ~label ~anc ~children =
  let kids = List.sort (fun (a, _) (b, _) -> Int.compare a.uid b.uid) children in
  List.iter
    (fun (_, c) -> if c <= 0 then invalid_arg "Vtype.make: nonpositive count")
    kids;
  let key = (label, anc, List.map (fun (t, c) -> (t.uid, c)) kids) in
  match Hashtbl.find_opt registry key with
  | Some t -> t
  | None ->
      let t = { uid = !counter; vlabel = label; anc; kids } in
      incr counter;
      Hashtbl.replace registry key t;
      t

let rec size t =
  1 + List.fold_left (fun acc (c, m) -> acc + (m * size c)) 0 t.kids

let rec height t =
  1 + List.fold_left (fun acc (c, _) -> max acc (height c)) 0 t.kids

let compute ?labels g tree =
  let n = Graph.n g in
  let label_of v = match labels with None -> 0 | Some a -> a.(v) in
  if n <> Elimination.n tree then invalid_arg "Vtype.compute: size mismatch";
  let depth = Elimination.depth tree in
  let types = Array.make n None in
  let anc_vector_of v =
    (* ancestors of v from root down to parent, excluding v itself *)
    let ancs = List.tl (Elimination.ancestors tree v) in
    List.rev_map (fun a -> Graph.mem_edge g v a) ancs
  in
  (* bottom-up by decreasing depth *)
  let kids = Elimination.children_all tree in
  let order = List.init n Fun.id in
  let order = List.sort (fun a b -> Int.compare depth.(b) depth.(a)) order in
  List.iter
    (fun v ->
      let kid_types =
        List.map
          (fun w ->
            match types.(w) with
            | Some t -> t
            | None -> assert false)
          kids.(v)
      in
      let grouped =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun t ->
            Hashtbl.replace tbl t.uid
              (match Hashtbl.find_opt tbl t.uid with
              | Some (t, c) -> (t, c + 1)
              | None -> (t, 1)))
          kid_types;
        Hashtbl.fold (fun _ tc acc -> tc :: acc) tbl []
      in
      types.(v) <-
        Some (make ~label:(label_of v) ~anc:(anc_vector_of v) ~children:grouped))
    order;
  Array.map (function Some t -> t | None -> assert false) types

let rec pp ppf t =
  Format.fprintf ppf "⟨";
  if t.vlabel <> 0 then Format.fprintf ppf "L%d:" t.vlabel;
  List.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) t.anc;
  List.iter (fun (c, m) -> Format.fprintf ppf "|%a×%d" pp c m) t.kids;
  Format.fprintf ppf "⟩"

let f_bound ~k ~t =
  let f = Array.make (t + 2) 1 in
  (* f.(d) = 2^(d-1) · (k+1)^f.(d+1), computed downward, saturating.
     At the deepest level d = t the subtree is a single vertex:
     f.(t) = 2^(t-1). *)
  let sat_mul a b = if a > 0 && b > max_int / a then max_int else a * b in
  let sat_pow b e =
    let rec go acc i =
      if i = 0 then acc
      else if acc = max_int then max_int
      else go (sat_mul acc b) (i - 1)
    in
    if b <= 1 then b else if e >= 63 then max_int else go 1 e
  in
  f.(t + 1) <- 0;
  for d = t downto 1 do
    let pow2 = sat_pow 2 (d - 1) in
    let tail = if f.(d + 1) = max_int then max_int else sat_pow (k + 1) f.(d + 1) in
    f.(d) <- sat_mul pow2 tail
  done;
  Array.sub f 1 t
