type t = {
  graph : Graph.t;
  tree : Elimination.t;
  k : int;
  alive : bool array;
  pruned : bool array;
  end_type : Vtype.t array;
  kernel : Graph.t;
  to_kernel : int array;
  of_kernel : int array;
}

let reduce ?labels g tree ~k =
  let label_of v = match labels with None -> 0 | Some a -> a.(v) in
  if k < 1 then invalid_arg "Reduce.reduce: k must be >= 1";
  if not (Elimination.is_model tree g) then
    invalid_arg "Reduce.reduce: not a model of the graph";
  if not (Elimination.is_coherent tree g) then
    invalid_arg "Reduce.reduce: model is not coherent";
  let size = Graph.n g in
  let depth = Elimination.depth tree in
  let maxdepth = Elimination.height tree in
  let kids_of = Elimination.children_all tree in
  let alive = Array.make size true in
  let end_type : Vtype.t option array = Array.make size None in
  let pruned = Array.make size false in
  let typ v = match end_type.(v) with Some t -> t | None -> assert false in
  let anc_vector_of v =
    let ancs = List.tl (Elimination.ancestors tree v) in
    List.rev_map (fun a -> Graph.mem_edge g v a) ancs
  in
  let kill_subtree w =
    pruned.(w) <- true;
    List.iter (fun x -> alive.(x) <- false) (Elimination.subtree tree w)
  in
  (* Deepest-first: at depth [d], prune surplus children (at depth d+1,
     already typed) and then fix the type of each alive vertex. *)
  for d = maxdepth downto 1 do
    for v = 0 to size - 1 do
      if alive.(v) && depth.(v) = d then begin
        let kids = List.filter (fun w -> alive.(w)) kids_of.(v) in
        (* group by end type id; keep the k lowest-numbered *)
        let by_type = Hashtbl.create 8 in
        List.iter
          (fun w ->
            let key = Vtype.id (typ w) in
            Hashtbl.replace by_type key
              (w :: Option.value ~default:[] (Hashtbl.find_opt by_type key)))
          kids;
        Hashtbl.iter
          (fun _ group ->
            let group = List.sort Int.compare group in
            List.iteri (fun i w -> if i >= k then kill_subtree w) group)
          by_type;
        let remaining = List.filter (fun w -> alive.(w)) kids_of.(v) in
        let grouped =
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun w ->
              let key = Vtype.id (typ w) in
              Hashtbl.replace tbl key
                (match Hashtbl.find_opt tbl key with
                | Some (t, c) -> (t, c + 1)
                | None -> (typ w, 1)))
            remaining;
          Hashtbl.fold (fun _ tc acc -> tc :: acc) tbl []
        in
        end_type.(v) <-
          Some
            (Vtype.make ~label:(label_of v) ~anc:(anc_vector_of v)
               ~children:grouped)
      end
    done
  done;
  let kept =
    List.filter (fun v -> alive.(v)) (List.init size Fun.id)
  in
  let kernel, of_kernel = Graph.induced g kept in
  let to_kernel = Array.make size (-1) in
  Array.iteri (fun i v -> to_kernel.(v) <- i) of_kernel;
  {
    graph = g;
    tree;
    k;
    alive;
    pruned;
    end_type = Array.map (function Some t -> t | None -> assert false) end_type;
    kernel;
    to_kernel;
    of_kernel;
  }

let kernel_size r = Graph.n r.kernel

let check_lemma_6_1 r =
  let size = Graph.n r.graph in
  let ok = ref true in
  for v = 0 to size - 1 do
    if r.alive.(v) then
      List.iter
        (fun u ->
          if (not r.alive.(u)) && r.pruned.(u) then begin
            let same_type_alive =
              List.filter
                (fun w ->
                  r.alive.(w) && Vtype.equal r.end_type.(w) r.end_type.(u))
                (Elimination.children r.tree v)
            in
            if List.length same_type_alive <> r.k then ok := false
          end)
        (Elimination.children r.tree v)
  done;
  !ok

let kernel_tree r =
  let parent =
    Array.map
      (fun v ->
        let p = r.tree.Elimination.parent.(v) in
        if p = -1 then -1 else r.to_kernel.(p))
      r.of_kernel
  in
  Elimination.make ~parent
