.PHONY: all check build test bench bench-runtime bench-perf bench-perf-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Tier-1 verification in one command (what CI runs).
check: build test

bench:
	dune exec bench/main.exe -- --timings

# Fault-injection sweep over the round-based runtime; writes
# BENCH_runtime.json (detection rate/latency/communication series).
bench-runtime:
	dune exec bench/main.exe -- --runtime

# Prover/verifier wall-clock, throughput, parallel speedup and
# allocation counters per scheme family; writes BENCH_PERF.json
# (schema: lib/util/perf_schema.mli, guarded by the test suite).
bench-perf:
	dune exec bench/main.exe -- --perf

# Small-n variant for CI: same artifact, seconds instead of minutes.
bench-perf-smoke:
	dune exec bench/main.exe -- --perf-smoke

clean:
	dune clean
