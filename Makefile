.PHONY: all check build test bench bench-runtime bench-perf bench-perf-smoke \
        serve-smoke bench-serve bench-serve-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Tier-1 verification in one command (what CI runs).
check: build test

bench:
	dune exec bench/main.exe -- --timings

# Fault-injection sweep over the round-based runtime; writes
# BENCH_runtime.json (detection rate/latency/communication series).
bench-runtime:
	dune exec bench/main.exe -- --runtime

# Prover/verifier wall-clock, throughput, parallel speedup and
# allocation counters per scheme family; writes BENCH_PERF.json
# (schema: lib/util/perf_schema.mli, guarded by the test suite).
bench-perf:
	dune exec bench/main.exe -- --perf

# Small-n variant for CI: same artifact, seconds instead of minutes.
bench-perf-smoke:
	dune exec bench/main.exe -- --perf-smoke

# Boot a self-hosted server, fire a scaled-down campaign at it and
# validate the result — the one-command health check for the serving
# subsystem (no artifact written).
serve-smoke:
	dune exec bin/localcert_cli.exe -- loadgen --campaign --smoke

# Full latency/throughput campaign against a self-hosted server;
# writes BENCH_SERVE.json (schema: lib/serve/bench_schema.mli, guarded
# by the test suite, which expects the committed artifact to exist).
bench-serve:
	dune exec bin/localcert_cli.exe -- loadgen --campaign --out BENCH_SERVE.json

# Smoke variant: same artifact shape, ~100x fewer requests.
bench-serve-smoke:
	dune exec bin/localcert_cli.exe -- loadgen --campaign --smoke --out BENCH_SERVE_smoke.json

clean:
	dune clean
