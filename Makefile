.PHONY: all check build test bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Tier-1 verification in one command (what CI runs).
check: build test

bench:
	dune exec bench/main.exe -- --timings

clean:
	dune clean
