.PHONY: all check build test bench bench-runtime clean

all: build

build:
	dune build @all

test:
	dune runtest

# Tier-1 verification in one command (what CI runs).
check: build test

bench:
	dune exec bench/main.exe -- --timings

# Fault-injection sweep over the round-based runtime; writes
# BENCH_runtime.json (detection rate/latency/communication series).
bench-runtime:
	dune exec bench/main.exe -- --runtime

clean:
	dune clean
